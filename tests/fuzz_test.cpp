// Randomized stress tests across the stack: random irregular topologies,
// random traffic, random parameters — the invariants that must always
// hold: routes terminate correctly, up*/down* stays deadlock-free,
// every injected transaction completes, every byte survives. The traffic
// sweep runs through the differential kernel-equivalence harness, so
// each random network is simultaneously a gated-vs-full bit-exactness
// trial on a topology class the named generators cannot produce.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/noc/network.hpp"
#include "src/topology/deadlock.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"
#include "tests/support/differential.hpp"

namespace xpl {
namespace {

// Random connected topology: spanning tree + extra duplex chords.
topology::Topology random_topology(Rng& rng, std::size_t switches,
                                   std::size_t extra_chords,
                                   std::size_t max_stages) {
  topology::Topology topo;
  for (std::size_t s = 0; s < switches; ++s) topo.add_switch();
  // Random spanning tree keeps it connected.
  for (std::uint32_t s = 1; s < switches; ++s) {
    const auto parent = static_cast<std::uint32_t>(rng.next_below(s));
    topo.add_duplex(parent, s, rng.next_below(max_stages + 1));
  }
  for (std::size_t c = 0; c < extra_chords; ++c) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(switches));
    const auto b = static_cast<std::uint32_t>(rng.next_below(switches));
    if (a == b) continue;
    topo.add_duplex(a, b, rng.next_below(max_stages + 1));
  }
  // One initiator and one target per switch keeps every pair routable.
  for (std::uint32_t s = 0; s < switches; ++s) {
    topo.attach_initiator(s);
    topo.attach_target(s);
  }
  return topo;
}

class RandomTopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologySweep, UpDownRoutesAndDeadlockFree) {
  Rng rng(1000 + GetParam());
  const std::size_t switches = 3 + rng.next_below(8);
  const auto topo =
      random_topology(rng, switches, rng.next_below(6), /*max_stages=*/2);
  topo.validate();
  const auto tables =
      topology::compute_all_routes(topo, topology::RoutingAlgorithm::kUpDown);
  EXPECT_TRUE(topology::check_deadlock(topo, tables).deadlock_free)
      << "seed " << GetParam();
  // Every route walks to its destination.
  for (const auto& [pair, route] : tables.routes) {
    const auto path = topology::route_switch_path(topo, pair.first, route);
    EXPECT_EQ(path.back(), topo.ni(pair.second).switch_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep, ::testing::Range(0, 20));

class RandomTrafficSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTrafficSweep, EverythingCompletesOnRandomNetwork) {
  Rng rng(5000 + GetParam());
  const std::size_t switches = 3 + rng.next_below(5);
  auto topo =
      random_topology(rng, switches, rng.next_below(4), /*max_stages=*/1);

  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kUpDown;
  cfg.target_window = 1 << 12;
  cfg.flit_width = rng.chance(0.5) ? 32 : 64;
  cfg.arbiter = rng.chance(0.5) ? switchlib::ArbiterKind::kRoundRobin
                                : switchlib::ArbiterKind::kFixedPriority;
  cfg.bit_error_rate = rng.chance(0.5) ? 0.0 : 2e-4;
  cfg.crc = CrcKind::kCrc16;
  cfg.seed = 77 + GetParam();

  // Route field must fit the flit; deep random topologies can exceed it.
  const auto tables = topology::compute_all_routes(topo, cfg.routing);
  const auto format = HeaderFormat::for_network(
      topo.max_radix_out(), topo.num_nis(), tables.max_hops(),
      bits_for(cfg.target_window), cfg.max_burst, cfg.num_threads);
  if (format.route_bits() > cfg.flit_width) {
    GTEST_SKIP() << "route does not fit flit width for this sample";
  }

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.02 + rng.next_double() * 0.04;
  tcfg.max_burst = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  tcfg.seed = 123 + GetParam();

  // Twin networks, one per scheduler, through the shared differential
  // harness: the irregular graph must behave identically gated vs full.
  auto full_cfg = cfg;
  full_cfg.scheduler = sim::Scheduler::kFull;
  cfg.scheduler = sim::Scheduler::kGated;
  noc::Network full(topo, full_cfg);
  noc::Network gated(std::move(topo), cfg);
  traffic::TrafficDriver full_driver(full, tcfg);
  traffic::TrafficDriver gated_driver(gated, tcfg);
  const auto diff = testsupport::run_lockstep(
      full, gated, full_driver, gated_driver, 2500, 400000,
      "fuzz irregular topology, seed " + std::to_string(GetParam()));
  ASSERT_TRUE(diff.ok) << diff.detail;

  std::size_t completed = 0;
  for (std::size_t i = 0; i < gated.num_initiators(); ++i) {
    EXPECT_TRUE(gated.master(i).quiescent())
        << "seed " << GetParam() << " master " << i;
    completed += gated.master(i).completed().size();
  }
  EXPECT_EQ(completed, gated_driver.injected()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficSweep, ::testing::Range(0, 15));

TEST(Fuzz, DataIntegritySweep) {
  // Random write/readback pairs across random networks: every byte back.
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(9000 + trial);
    auto topo = random_topology(rng, 4 + rng.next_below(3), 2, 0);
    noc::NetworkConfig cfg;
    cfg.routing = topology::RoutingAlgorithm::kUpDown;
    cfg.target_window = 1 << 12;
    noc::Network net(std::move(topo), cfg);

    struct Expect {
      std::size_t master;
      std::uint64_t value;
    };
    std::vector<Expect> expects;
    for (int k = 0; k < 12; ++k) {
      const auto m = rng.next_below(net.num_initiators());
      const auto t = rng.next_below(net.num_targets());
      const std::uint64_t value = rng.next_u64() & 0xFFFFFFFF;
      ocp::Transaction wr;
      wr.cmd = ocp::Cmd::kWriteNp;
      wr.addr = net.target_base(t) + 8 * (16 * m + k % 16);
      wr.burst_len = 1;
      wr.data = {value};
      net.master(m).push_transaction(wr);
      ocp::Transaction rd;
      rd.cmd = ocp::Cmd::kRead;
      rd.addr = wr.addr;
      rd.burst_len = 1;
      net.master(m).push_transaction(rd);
      expects.push_back({m, value});
    }
    net.run_until_quiescent(200000);
    // Each master issued pairs in order; reads are the 2nd, 4th, ...
    std::vector<std::size_t> seen(net.num_initiators(), 0);
    std::vector<std::vector<std::uint64_t>> reads(net.num_initiators());
    for (std::size_t i = 0; i < net.num_initiators(); ++i) {
      for (const auto& result : net.master(i).completed()) {
        if (!result.data.empty()) reads[i].push_back(result.data[0]);
      }
    }
    for (const auto& expect : expects) {
      auto& cursor = seen[expect.master];
      ASSERT_LT(cursor, reads[expect.master].size()) << "trial " << trial;
      EXPECT_EQ(reads[expect.master][cursor], expect.value)
          << "trial " << trial;
      ++cursor;
    }
  }
}

}  // namespace
}  // namespace xpl
