// Initiator + target NI pair wired back to back: full OCP-to-packet-to-OCP
// round trips without a switch in between.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/ni/ni_initiator.hpp"
#include "src/ni/ni_target.hpp"
#include "src/ocp/agents.hpp"

namespace xpl::ni {
namespace {

PacketFormat test_format(std::size_t flit_width = 32) {
  PacketFormat f;
  f.header.port_bits = 3;
  f.header.max_hops = 4;
  f.header.node_bits = 4;
  f.header.txn_bits = 4;
  f.header.thread_bits = 2;
  f.header.burst_bits = 5;
  f.header.addr_bits = 16;
  f.flit_width = flit_width;
  f.beat_width = 32;
  return f;
}

struct Harness {
  sim::Kernel kernel;
  ocp::OcpWires m_wires;
  ocp::OcpWires s_wires;
  link::LinkWires req_wires;   // initiator -> target
  link::LinkWires resp_wires;  // target -> initiator
  ocp::MasterCore master;
  InitiatorNi ini;
  TargetNi tgt;
  ocp::SlaveCore slave;

  static constexpr std::uint32_t kIniNode = 0;
  static constexpr std::uint32_t kTgtNode = 1;

  explicit Harness(std::size_t flit_width = 32)
      : m_wires(ocp::OcpWires::make(kernel)),
        s_wires(ocp::OcpWires::make(kernel)),
        req_wires(link::LinkWires::make(kernel)),
        resp_wires(link::LinkWires::make(kernel)),
        master("master", m_wires, master_config()),
        ini("ini", ini_config(flit_width), m_wires, req_wires, resp_wires),
        tgt("tgt", tgt_config(flit_width), s_wires, req_wires, resp_wires),
        slave("slave", s_wires, slave_config()) {
    ini.lut().add_range({0x10000, 0x10000, kTgtNode});
    ini.lut().set_route(kTgtNode, Route{0});
    tgt.lut().set_route(kIniNode, Route{0});
    kernel.add_module(master);
    kernel.add_module(ini);
    kernel.add_module(tgt);
    kernel.add_module(slave);
  }

  static ocp::MasterCore::Config master_config() {
    ocp::MasterCore::Config c;
    c.req_credits = 4;  // must equal ini.ocp_req_fifo
    return c;
  }
  static ocp::SlaveCore::Config slave_config() {
    ocp::SlaveCore::Config c;
    c.size_bytes = 1 << 16;
    return c;
  }
  static InitiatorConfig ini_config(std::size_t flit_width) {
    InitiatorConfig c;
    c.format = test_format(flit_width);
    c.node_id = kIniNode;
    c.ocp_req_fifo = 4;
    c.ocp_resp_credits = ocp::MasterCore::Config{}.resp_fifo_depth;
    c.protocol = link::ProtocolConfig::for_link(0);
    return c;
  }
  static TargetConfig tgt_config(std::size_t flit_width) {
    TargetConfig c;
    c.format = test_format(flit_width);
    c.node_id = kTgtNode;
    c.ocp_req_credits = ocp::SlaveCore::Config{}.req_fifo_depth;
    c.ocp_resp_fifo = ocp::SlaveCore::Config{}.resp_credits;
    c.protocol = link::ProtocolConfig::for_link(0);
    return c;
  }

  void run_to_quiescent(std::size_t max_cycles = 5000) {
    kernel.run_until(
        [&] { return master.quiescent() && ini.idle() && tgt.idle(); },
        max_cycles);
  }
};

TEST(NiPair, ReadRoundTrip) {
  Harness h;
  h.slave.poke(0x20, 0xFEEDFACE12345678ull);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = 0x10020;  // window base 0x10000 + offset 0x20
  txn.burst_len = 1;
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
  const auto& result = h.master.completed()[0];
  EXPECT_EQ(result.resp, ocp::Resp::kDva);
  ASSERT_EQ(result.data.size(), 1u);
  // 32-bit beats truncate the 64-bit word.
  EXPECT_EQ(result.data[0], 0x12345678u);
}

TEST(NiPair, PostedWriteReachesSlave) {
  Harness h;
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kWrite;
  txn.addr = 0x10100;
  txn.burst_len = 1;
  txn.data = {0xAB};
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  h.kernel.run(100);
  EXPECT_EQ(h.slave.peek(0x100), 0xABu);
  EXPECT_EQ(h.ini.packets_sent(), 1u);
  EXPECT_EQ(h.tgt.packets_received(), 1u);
  // Posted writes produce no response packet.
  EXPECT_EQ(h.tgt.packets_sent(), 0u);
}

TEST(NiPair, NonPostedWriteCompletion) {
  Harness h;
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kWriteNp;
  txn.addr = 0x10008;
  txn.burst_len = 1;
  txn.data = {0x77};
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
  EXPECT_EQ(h.master.completed()[0].resp, ocp::Resp::kDva);
  EXPECT_EQ(h.slave.peek(0x8), 0x77u);
  EXPECT_EQ(h.tgt.packets_sent(), 1u);
}

TEST(NiPair, WriteBurstThenReadBurst) {
  Harness h;
  ocp::Transaction wr;
  wr.cmd = ocp::Cmd::kWrite;
  wr.addr = 0x10200;
  wr.burst_len = 8;
  for (std::uint64_t i = 0; i < 8; ++i) wr.data.push_back(0x100 + i);
  h.master.push_transaction(wr);

  ocp::Transaction rd;
  rd.cmd = ocp::Cmd::kRead;
  rd.addr = 0x10200;
  rd.burst_len = 8;
  h.master.push_transaction(rd);
  h.run_to_quiescent(20000);

  ASSERT_EQ(h.master.completed().size(), 2u);
  const auto& result = h.master.completed()[1];
  ASSERT_EQ(result.data.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.data[i], 0x100 + i) << "beat " << i;
  }
}

TEST(NiPair, LutMissAnswersErrLocally) {
  Harness h;
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = 0xDEAD0000;  // outside every window
  txn.burst_len = 2;
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
  EXPECT_EQ(h.master.completed()[0].resp, ocp::Resp::kErr);
  EXPECT_EQ(h.ini.packets_sent(), 0u);  // never touched the network
  EXPECT_EQ(h.ini.lut_misses(), 1u);
}

TEST(NiPair, MultipleOutstandingReads) {
  Harness h;
  for (std::uint64_t i = 0; i < 6; ++i) {
    h.slave.poke(0x300 + 8 * i, 0x9000 + i);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = 0x10300 + 8 * i;
    txn.burst_len = 1;
    h.master.push_transaction(txn);
  }
  h.run_to_quiescent(20000);
  ASSERT_EQ(h.master.completed().size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(h.master.completed()[i].data.size(), 1u);
    EXPECT_EQ(h.master.completed()[i].data[0], 0x9000 + i);
  }
}

TEST(NiPair, ThreadsCarriedThrough) {
  Harness h;
  for (std::uint32_t t = 0; t < 4; ++t) {
    h.slave.poke(0x400 + 8 * t, t);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = 0x10400 + 8 * t;
    txn.burst_len = 1;
    txn.thread_id = t;
    h.master.push_transaction(txn);
  }
  h.run_to_quiescent(20000);
  ASSERT_EQ(h.master.completed().size(), 4u);
  for (const auto& result : h.master.completed()) {
    ASSERT_EQ(result.data.size(), 1u);
    EXPECT_EQ(result.data[0], result.thread_id);
  }
}

TEST(NiPair, SidebandInterruptPropagates) {
  Harness h;
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kWriteNp;
  txn.addr = 0x10000;
  txn.burst_len = 1;
  txn.data = {1};
  txn.sideband_flag = true;  // slave loops this back as SInterrupt
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
}

// Paper flit-width sweep end to end through both NIs.
class NiWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NiWidthSweep, ReadWriteAcrossWidths) {
  Harness h(GetParam());
  ocp::Transaction wr;
  wr.cmd = ocp::Cmd::kWrite;
  wr.addr = 0x10500;
  wr.burst_len = 3;
  wr.data = {0xA, 0xB, 0xC};
  h.master.push_transaction(wr);
  ocp::Transaction rd;
  rd.cmd = ocp::Cmd::kRead;
  rd.addr = 0x10500;
  rd.burst_len = 3;
  h.master.push_transaction(rd);
  h.run_to_quiescent(30000);
  ASSERT_EQ(h.master.completed().size(), 2u);
  const auto& result = h.master.completed()[1];
  ASSERT_EQ(result.data.size(), 3u);
  EXPECT_EQ(result.data[0], 0xAu);
  EXPECT_EQ(result.data[1], 0xBu);
  EXPECT_EQ(result.data[2], 0xCu);
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, NiWidthSweep,
                         ::testing::Values<std::size_t>(16, 32, 64, 128));

TEST(NiConfig, ValidationCatchesWideBeats) {
  InitiatorConfig c = Harness::ini_config(32);
  c.format.beat_width = 128;
  EXPECT_THROW(c.validate(), Error);
}

TEST(NiPair, ManyMixedTransactionsDrain) {
  Harness h;
  Rng rng(5);
  int expect_results = 0;
  for (int k = 0; k < 40; ++k) {
    ocp::Transaction txn;
    const auto kind = rng.next_below(3);
    txn.burst_len = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    txn.addr = 0x10000 + 8 * rng.next_below(256);
    txn.thread_id = static_cast<std::uint32_t>(rng.next_below(4));
    if (kind == 0) {
      txn.cmd = ocp::Cmd::kRead;
    } else if (kind == 1) {
      txn.cmd = ocp::Cmd::kWrite;
      txn.data.assign(txn.burst_len, rng.next_u64());
    } else {
      txn.cmd = ocp::Cmd::kWriteNp;
      txn.data.assign(txn.burst_len, rng.next_u64());
    }
    ++expect_results;
    h.master.push_transaction(txn);
  }
  h.run_to_quiescent(100000);
  EXPECT_TRUE(h.master.quiescent());
  EXPECT_EQ(h.master.completed().size(),
            static_cast<std::size_t>(expect_results));
}

}  // namespace
}  // namespace xpl::ni
