// OCP master/slave agents wired back to back (no network in between).
#include "src/ocp/agents.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace xpl::ocp {
namespace {

struct Harness {
  sim::Kernel kernel;
  OcpWires wires;
  MasterCore master;
  SlaveCore slave;

  explicit Harness(MasterCore::Config mcfg = {}, SlaveCore::Config scfg = {})
      : wires(OcpWires::make(kernel)),
        master("master", wires, align(mcfg, scfg)),
        slave("slave", wires, scfg) {
    kernel.add_module(master);
    kernel.add_module(slave);
  }

  // Credits must mirror the peer's FIFO depths.
  static MasterCore::Config align(MasterCore::Config mcfg,
                                  const SlaveCore::Config& scfg) {
    mcfg.req_credits = scfg.req_fifo_depth;
    return mcfg;
  }

  void run_to_quiescent(std::size_t max_cycles = 2000) {
    kernel.run_until([&] { return master.quiescent(); }, max_cycles);
  }
};

TEST(OcpAgents, SingleReadReturnsWrittenData) {
  Harness h;
  h.slave.poke(0x100, 0xDEADBEEFCAFEF00Dull);

  Transaction txn;
  txn.cmd = Cmd::kRead;
  txn.addr = 0x100;
  txn.burst_len = 1;
  h.master.push_transaction(txn);
  h.run_to_quiescent();

  ASSERT_EQ(h.master.completed().size(), 1u);
  const auto& result = h.master.completed()[0];
  EXPECT_EQ(result.resp, Resp::kDva);
  ASSERT_EQ(result.data.size(), 1u);
  EXPECT_EQ(result.data[0], 0xDEADBEEFCAFEF00Dull);
  EXPECT_GT(result.complete_cycle, result.issue_cycle);
}

TEST(OcpAgents, PostedWriteLandsInMemory) {
  Harness h;
  Transaction txn;
  txn.cmd = Cmd::kWrite;
  txn.addr = 0x80;
  txn.burst_len = 1;
  txn.data = {0x1122334455667788ull};
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  h.kernel.run(50);  // posted: master quiesces before the slave commits
  EXPECT_EQ(h.slave.peek(0x80), 0x1122334455667788ull);
}

TEST(OcpAgents, WriteBurstThenReadBurst) {
  Harness h;
  Transaction wr;
  wr.cmd = Cmd::kWrite;
  wr.addr = 0x200;
  wr.burst_len = 4;
  wr.data = {1, 2, 3, 4};
  h.master.push_transaction(wr);

  Transaction rd;
  rd.cmd = Cmd::kRead;
  rd.addr = 0x200;
  rd.burst_len = 4;
  h.master.push_transaction(rd);
  h.run_to_quiescent();

  ASSERT_EQ(h.master.completed().size(), 2u);
  const auto& result = h.master.completed()[1];
  ASSERT_EQ(result.data.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.data[i], i + 1);
  }
}

TEST(OcpAgents, NonPostedWriteGetsCompletion) {
  Harness h;
  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = 0x40;
  txn.burst_len = 2;
  txn.data = {7, 8};
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
  EXPECT_EQ(h.master.completed()[0].resp, Resp::kDva);
  EXPECT_EQ(h.slave.peek(0x40), 7u);
  EXPECT_EQ(h.slave.peek(0x48), 8u);
}

TEST(OcpAgents, OutOfRangeAccessErrs) {
  SlaveCore::Config scfg;
  scfg.size_bytes = 0x100;
  Harness h({}, scfg);
  Transaction txn;
  txn.cmd = Cmd::kRead;
  txn.addr = 0x1000;
  txn.burst_len = 1;
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
  EXPECT_EQ(h.master.completed()[0].resp, Resp::kErr);
}

TEST(OcpAgents, SidebandFlagLoopsBackAsInterrupt) {
  Harness h;
  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = 0x10;
  txn.burst_len = 1;
  txn.data = {42};
  txn.sideband_flag = true;
  h.master.push_transaction(txn);
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 1u);
}

TEST(OcpAgents, ManyTransactionsAllComplete) {
  Harness h;
  h.slave.poke(0, 123);
  for (int i = 0; i < 32; ++i) {
    Transaction txn;
    if (i % 3 == 0) {
      txn.cmd = Cmd::kWrite;
      txn.data = {static_cast<std::uint64_t>(i)};
    } else {
      txn.cmd = Cmd::kRead;
    }
    txn.addr = static_cast<std::uint64_t>(i) * 8;
    txn.burst_len = 1;
    h.master.push_transaction(txn);
  }
  h.run_to_quiescent(5000);
  EXPECT_TRUE(h.master.quiescent());
  EXPECT_EQ(h.master.completed().size(), 32u);
}

TEST(OcpAgents, ThreadsInterleaveIndependently) {
  Harness h;
  for (std::uint32_t t = 0; t < 4; ++t) {
    Transaction txn;
    txn.cmd = Cmd::kRead;
    txn.addr = 0x300 + 8 * t;
    txn.burst_len = 1;
    txn.thread_id = t;
    h.slave.poke(txn.addr, 0x1000 + t);
    h.master.push_transaction(txn);
  }
  h.run_to_quiescent();
  ASSERT_EQ(h.master.completed().size(), 4u);
  for (const auto& result : h.master.completed()) {
    ASSERT_EQ(result.data.size(), 1u);
    EXPECT_EQ(result.data[0], 0x1000u + result.thread_id);
  }
}

TEST(OcpAgents, WriteBurstLengthMismatchRejected) {
  Harness h;
  Transaction txn;
  txn.cmd = Cmd::kWrite;
  txn.burst_len = 3;
  txn.data = {1, 2};  // mismatch
  EXPECT_THROW(h.master.push_transaction(txn), Error);
}

TEST(OcpAgents, SlaveLatencyDelaysResponse) {
  SlaveCore::Config fast;
  fast.latency = 0;
  SlaveCore::Config slow;
  slow.latency = 40;

  auto measure = [](SlaveCore::Config scfg) {
    Harness h({}, scfg);
    Transaction txn;
    txn.cmd = Cmd::kRead;
    txn.addr = 0;
    txn.burst_len = 1;
    h.master.push_transaction(txn);
    h.run_to_quiescent();
    const auto& result = h.master.completed().at(0);
    return result.complete_cycle - result.issue_cycle;
  };
  EXPECT_GE(measure(slow), measure(fast) + 35);
}

TEST(OcpAgents, CmdAndRespNames) {
  EXPECT_STREQ(cmd_name(Cmd::kRead), "READ");
  EXPECT_STREQ(cmd_name(Cmd::kWrite), "WRITE");
  EXPECT_STREQ(resp_name(Resp::kDva), "DVA");
  EXPECT_STREQ(resp_name(Resp::kErr), "ERR");
}

}  // namespace
}  // namespace xpl::ocp
