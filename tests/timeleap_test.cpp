// Time-leap scheduler corner tests (PR 10).
//
// The calendar-driven kTimeLeap kernel must be bit-exact against the
// gated scheduler while actually skipping quiescent cycle gaps. The
// randomized sweep lives in tests/kernel_equiv_test.cpp; this file pins
// the corners a random draw undersamples:
//   - a leap truncated at a partitioned epoch barrier,
//   - a calendar wake landing exactly on the leap target,
//   - an external push_transaction at a cycle the kernel reached by
//     leaping (stale calendars, sleeping masters),
//   - closed-form catch-up of credit-stall and go-back-N counters
//     queried mid-sleep.
// Each correctness assertion is paired with an anti-vacuousness check
// (leapt_cycles() > 0 or a nonzero stall/retransmission count) so a
// regression that silently stops leaping fails loudly too.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/link/flow.hpp"
#include "src/noc/network.hpp"
#include "src/ocp/ocp.hpp"
#include "src/sim/kernel.hpp"
#include "src/traffic/traffic.hpp"
#include "tests/support/differential.hpp"

namespace xpl {
namespace {

using testsupport::DiffResult;
using testsupport::DiffScenario;
using testsupport::run_differential_timeleap;
using testsupport::run_differential_timeleap_partitioned;

/// A near-silent scenario: idle gaps dwarf both the calendar window and
/// any partition lookahead, so every leap mechanism engages.
DiffScenario quiet_scenario() {
  DiffScenario s;
  s.topology = "mesh";
  s.width = 3;
  s.height = 3;
  s.injection_rate = 0.002;
  s.cycles = 1200;
  s.traffic_seed = 41;
  return s;
}

TEST(TimeLeap, ActuallyLeapsAtLowLoad) {
  const DiffScenario s = quiet_scenario();
  noc::Network net(s.build_topology(),
                   s.net_config(sim::Scheduler::kTimeLeap));
  traffic::TrafficDriver driver(net, s.traffic_config());
  driver.run(s.cycles);
  // At a 0.002 injection rate most cycles are quiescent; if fewer than
  // half were leapt the scheduler is not earning its keep and the
  // equivalence results below would be vacuous.
  EXPECT_GT(net.kernel().leapt_cycles(), s.cycles / 2)
      << "time-leap kernel walked nearly every cycle at near-zero load";
}

TEST(TimeLeap, QuietScenarioIsBitExact) {
  const DiffResult result = run_differential_timeleap(quiet_scenario());
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- Corner: leap into an epoch barrier -----------------------------

// Partition-local leaps must stop at the epoch boundary even when the
// calendar says the next wake is further out: cut records from peer
// partitions land at the barrier, and sleeping through it would miss
// them. The digest comparison at every barrier proves the truncation is
// exact; the leapt/epoch counters prove both mechanisms actually ran.
TEST(TimeLeap, LeapIsTruncatedAtEpochBarriers) {
  DiffScenario s = quiet_scenario();
  s.topology = "mesh";
  s.width = 4;
  s.height = 4;
  for (const std::size_t partitions : {2u, 4u}) {
    const DiffResult result =
        run_differential_timeleap_partitioned(s, partitions, partitions);
    EXPECT_TRUE(result.ok) << result.detail;
  }

  noc::Network part(s.build_topology(),
                    s.net_config(sim::Scheduler::kTimeLeap, 4, 4));
  traffic::TrafficDriver driver(part, s.traffic_config());
  driver.run(s.cycles);
  ASSERT_GT(part.kernel().lookahead(), 0u);
  // Gaps at this load run thousands of cycles, far past one epoch, so
  // leaping and barrier crossings must both have happened many times.
  EXPECT_GT(part.kernel().leapt_cycles(), s.cycles / 2);
  EXPECT_GT(part.kernel().epochs(), 1u);
}

// --- Corner: calendar wake exactly at the leap target ----------------

// A master whose only work is a transaction with a future release cycle
// sleeps on the calendar until that release; an otherwise-empty network
// then leaps straight to it. The wake must land exactly on the leap
// target — one cycle late and the issue timing (hence every digest
// afterwards) shifts.
TEST(TimeLeap, WakeLandsExactlyOnLeapTarget) {
  DiffScenario s;  // 2x2 mesh, no traffic driver
  noc::Network gated(s.build_topology(),
                     s.net_config(sim::Scheduler::kGated));
  noc::Network leap(s.build_topology(),
                    s.net_config(sim::Scheduler::kTimeLeap));

  constexpr std::uint64_t kRelease = 200;
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = gated.target_base(1) + 0x40;
  gated.master(0).push_transaction_at(txn, kRelease);
  leap.master(0).push_transaction_at(txn, kRelease);

  // One span across the whole gap: the leap kernel should jump from
  // (nearly) cycle 0 to the release cycle in one hop.
  gated.step(400);
  leap.step(400);
  EXPECT_EQ(gated.kernel().digest(), leap.kernel().digest())
      << "digest mismatch after leaping to a scheduled release";
  EXPECT_EQ(gated.kernel().cycle(), leap.kernel().cycle());
  EXPECT_GT(leap.kernel().leapt_cycles(), kRelease / 2)
      << "kernel walked the pre-release gap instead of leaping it";

  for (std::size_t c = 0; c < 4000; ++c) {
    if (gated.quiescent() && leap.quiescent()) break;
    gated.step();
    leap.step();
    ASSERT_EQ(gated.kernel().digest(), leap.kernel().digest())
        << "drain digest mismatch at cycle " << gated.kernel().cycle();
  }
  ASSERT_TRUE(gated.quiescent());
  ASSERT_TRUE(leap.quiescent());
  ASSERT_EQ(gated.master(0).completed().size(), 1u);
  ASSERT_EQ(leap.master(0).completed().size(), 1u);
  EXPECT_EQ(gated.master(0).completed()[0].issue_cycle,
            leap.master(0).completed()[0].issue_cycle);
  EXPECT_EQ(gated.master(0).completed()[0].complete_cycle,
            leap.master(0).completed()[0].complete_cycle);
  EXPECT_GE(gated.master(0).completed()[0].issue_cycle, kRelease);
}

// --- Corner: external push at a cycle reached by leaping -------------

// While the kernel sleeps toward a far-future release, the testbench
// pushes a second, immediately-issuable transaction. The push arrives at
// a cycle the leap kernel reached by jumping (every module asleep, the
// first master still parked on the calendar for the far release); the
// self-wake in push_transaction must arm the master for that same
// cycle, and the stale calendar entry must stay harmless.
TEST(TimeLeap, PushDuringLeapedGapIssuesSameCycle) {
  DiffScenario s;  // 2x2 mesh, no traffic driver
  noc::Network gated(s.build_topology(),
                     s.net_config(sim::Scheduler::kGated));
  noc::Network leap(s.build_topology(),
                    s.net_config(sim::Scheduler::kTimeLeap));

  constexpr std::uint64_t kFarRelease = 300;
  ocp::Transaction far;
  far.cmd = ocp::Cmd::kRead;
  far.addr = gated.target_base(2) + 0x10;
  gated.master(0).push_transaction_at(far, kFarRelease);
  leap.master(0).push_transaction_at(far, kFarRelease);

  // Advance into the gap: the leap twin jumps these 100 cycles.
  gated.step(100);
  leap.step(100);
  ASSERT_EQ(gated.kernel().cycle(), leap.kernel().cycle());
  ASSERT_EQ(gated.kernel().digest(), leap.kernel().digest());
  ASSERT_GT(leap.kernel().leapt_cycles(), 50u)
      << "the pre-push gap was walked, not leapt; corner not exercised";

  // Same-cycle external push on a *different* master mid-gap, plus one
  // on the sleeping master itself (its calendar entry for kFarRelease
  // is now stale-but-pending).
  ocp::Transaction now_txn;
  now_txn.cmd = ocp::Cmd::kWrite;
  now_txn.addr = gated.target_base(1);
  now_txn.data = {0xABCDu};
  now_txn.burst_len = 1;
  for (noc::Network* net : {&gated, &leap}) {
    net->master(1).push_transaction(now_txn);
    net->master(0).push_transaction(now_txn);
  }

  // Per-cycle lockstep through issue, the far release, and the drain:
  // digests must match every cycle, including the re-leapt stretch
  // between the pushed writes completing and kFarRelease.
  for (std::size_t c = 0; c < 4000; ++c) {
    if (gated.quiescent() && leap.quiescent()) break;
    gated.step();
    leap.step();
    ASSERT_EQ(gated.kernel().digest(), leap.kernel().digest())
        << "digest mismatch at cycle " << gated.kernel().cycle();
  }
  ASSERT_TRUE(gated.quiescent());
  ASSERT_TRUE(leap.quiescent());
  ASSERT_EQ(gated.master(0).completed().size(), 2u);
  ASSERT_EQ(leap.master(1).completed().size(), 1u);
  EXPECT_EQ(gated.master(1).completed()[0].issue_cycle,
            leap.master(1).completed()[0].issue_cycle);
}

// --- Corner: closed-form counter catch-up ---------------------------

// Credit-stall counters advance one per stalled cycle. A sender parked
// mid-stall by the time-leap kernel accrues those cycles closed-form on
// its next tick — and the accessor must account for the still-open gap
// when queried *between* runs, while the sender is asleep. Comparing
// totals at every span boundary (not just the end) is what catches an
// off-by-one in the catch-up arithmetic.
TEST(TimeLeap, CreditStallCountersCatchUpExactly) {
  // Deterministic sweet spot (seed-pinned): bursts dense enough to
  // overrun credits (15 stall cycles) with gaps long enough to leap
  // (17 leapt cycles) — both mechanisms provably active in one run.
  DiffScenario s;
  s.topology = "mesh";
  s.width = 3;
  s.height = 3;
  s.flow = link::FlowControl::kCredit;
  s.injection_rate = 0.03;
  s.burstiness = 0.8;
  s.cycles = 3000;
  s.traffic_seed = 77;

  noc::Network gated(s.build_topology(),
                     s.net_config(sim::Scheduler::kGated));
  noc::Network leap(s.build_topology(),
                    s.net_config(sim::Scheduler::kTimeLeap));
  traffic::TrafficDriver gated_driver(gated, s.traffic_config());
  traffic::TrafficDriver leap_driver(leap, s.traffic_config());

  for (std::size_t done = 0; done < s.cycles; done += 60) {
    gated_driver.run(60);
    leap_driver.run(60);
    ASSERT_EQ(gated.kernel().digest(), leap.kernel().digest())
        << "digest mismatch at span ending cycle " << gated.kernel().cycle();
    ASSERT_EQ(gated.total_credit_stalls(), leap.total_credit_stalls())
        << "credit-stall totals diverged at cycle " << gated.kernel().cycle();
  }
  gated.run_until_quiescent(20000);
  leap.run_until_quiescent(20000);
  EXPECT_EQ(gated.kernel().digest(), leap.kernel().digest());
  EXPECT_EQ(gated.total_credit_stalls(), leap.total_credit_stalls());
  EXPECT_GT(gated.total_credit_stalls(), 0u)
      << "scenario produced no credit stalls; catch-up not exercised";
  EXPECT_GT(leap.kernel().leapt_cycles(), 0u);
}

// Go-back-N: corrupted flits trigger NACK timers and retransmission
// counters. The sender's timer state lives in signals (digest-covered),
// so the counters must agree at every boundary with zero tolerance.
TEST(TimeLeap, GoBackNRetransmissionCountersMatch) {
  DiffScenario s;
  s.topology = "mesh";
  s.width = 3;
  s.height = 3;
  s.flow = link::FlowControl::kAckNack;
  s.bit_error_rate = 2e-3;
  s.injection_rate = 0.05;
  s.cycles = 900;
  s.net_seed = 11;
  s.traffic_seed = 13;

  noc::Network gated(s.build_topology(),
                     s.net_config(sim::Scheduler::kGated));
  noc::Network leap(s.build_topology(),
                    s.net_config(sim::Scheduler::kTimeLeap));
  traffic::TrafficDriver gated_driver(gated, s.traffic_config());
  traffic::TrafficDriver leap_driver(leap, s.traffic_config());

  for (std::size_t done = 0; done < s.cycles; done += 45) {
    gated_driver.run(45);
    leap_driver.run(45);
    ASSERT_EQ(gated.kernel().digest(), leap.kernel().digest())
        << "digest mismatch at span ending cycle " << gated.kernel().cycle();
    ASSERT_EQ(gated.total_retransmissions(), leap.total_retransmissions())
        << "retransmission totals diverged at cycle "
        << gated.kernel().cycle();
  }
  gated.run_until_quiescent(20000);
  leap.run_until_quiescent(20000);
  EXPECT_EQ(gated.kernel().digest(), leap.kernel().digest());
  EXPECT_EQ(gated.total_retransmissions(), leap.total_retransmissions());
  EXPECT_GT(gated.total_retransmissions(), 0u)
      << "scenario produced no retransmissions; corner not exercised";
}

}  // namespace
}  // namespace xpl
