// Credit-based flow control: counted-slot lossless delivery over
// reliable links, zero-credit stalling, the flow.hpp protocol seam, and
// credit mode end to end through Network and the sweep engine.
#include "src/link/credit.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/link/flow.hpp"
#include "src/sim/kernel.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::link {
namespace {

// Streams `total` numbered flits through a LinkSender (protocol chosen
// by the harness), mirroring goback_n_test's TestSender.
class TestSender : public sim::Module {
 public:
  TestSender(FlowControl flow, LinkWires wires, const ProtocolConfig& cfg,
             std::size_t total)
      : sim::Module("sender"), tx_(flow, wires, cfg), total_(total) {}

  void tick(sim::Kernel&) override {
    tx_.begin_cycle();
    if (next_ < total_ && tx_.can_accept()) {
      tx_.accept(Flit(BitVector(32, next_ & 0xFFFFFFFF), /*head=*/true,
                      /*tail=*/true));
      ++next_;
    }
    tx_.end_cycle();
  }

  bool done() const { return next_ == total_ && tx_.idle(); }
  const LinkSender& tx() const { return tx_; }

 private:
  LinkSender tx_;
  std::size_t next_ = 0;
  std::size_t total_;
};

// Receives flits with a configurable stall probability and records
// payloads in arrival order.
class TestReceiver : public sim::Module {
 public:
  TestReceiver(FlowControl flow, LinkWires wires, const ProtocolConfig& cfg,
               double stall, std::uint64_t seed)
      : sim::Module("receiver"),
        rx_(flow, wires, cfg),
        stall_(stall),
        rng_(seed) {}

  void tick(sim::Kernel&) override {
    const bool can_take = !rng_.chance(stall_);
    if (auto flit = rx_.begin_cycle(can_take)) {
      values_.push_back(flit->payload.to_u64());
    }
    rx_.end_cycle();
  }

  const std::vector<std::uint64_t>& values() const { return values_; }
  const LinkReceiver& rx() const { return rx_; }

 private:
  LinkReceiver rx_;
  double stall_;
  Rng rng_;
  std::vector<std::uint64_t> values_;
};

struct Harness {
  sim::Kernel kernel;
  LinkWires up;
  LinkWires down;
  PipelinedLink link;
  TestSender sender;
  TestReceiver receiver;

  Harness(std::size_t total, std::size_t stages, double stall,
          FlowControl flow = FlowControl::kCredit, std::uint64_t seed = 3)
      : up(LinkWires::make(kernel)),
        down(LinkWires::make(kernel)),
        link("link", up, down, PipelinedLink::Config{stages, 0.0, seed}),
        sender(flow, up, ProtocolConfig::for_link(stages), total),
        receiver(flow, down, ProtocolConfig::for_link(stages), stall,
                 seed + 1) {
    kernel.add_module(sender);
    kernel.add_module(link);
    kernel.add_module(receiver);
  }

  std::uint64_t run_to_done(std::size_t max_cycles) {
    return kernel.run_until([&] { return sender.done(); }, max_cycles);
  }

  void expect_all_delivered(std::size_t total) {
    ASSERT_EQ(receiver.values().size(), total);
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(receiver.values()[i], i) << "out of order at " << i;
    }
  }
};

TEST(Credit, CleanLinkDeliversEverything) {
  Harness h(100, 0, 0.0);
  h.run_to_done(2000);
  EXPECT_TRUE(h.sender.done());
  h.expect_all_delivered(100);
  EXPECT_EQ(h.sender.tx().retransmissions(), 0u);
  EXPECT_EQ(h.sender.tx().credit_stalls(), 0u);
}

TEST(Credit, CleanPipelinedLinkSustainsFullThroughput) {
  // The credit count (= ProtocolConfig window) covers the round trip, so
  // a clean pipelined link sustains ~1 flit/cycle like go-back-N.
  const std::size_t total = 300;
  Harness h(total, 4, 0.0);
  const auto cycles = h.run_to_done(5000);
  h.expect_all_delivered(total);
  EXPECT_LT(cycles, total + 50);
}

TEST(Credit, BackpressureStallsAtZeroCreditsLosslessly) {
  Harness h(150, 2, 0.6);
  h.run_to_done(50000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(150);
  // A 60%-stalled receiver must have driven the sender to zero credits,
  // and back-pressure never retransmits under credits.
  EXPECT_GT(h.sender.tx().credit_stalls(), 0u);
  EXPECT_EQ(h.sender.tx().retransmissions(), 0u);
  EXPECT_EQ(h.receiver.rx().flow_rejections(), 0u);
}

TEST(Credit, SenderNeverExceedsCreditCount) {
  const auto cfg = ProtocolConfig::for_link(1);
  sim::Kernel kernel;
  auto wires = LinkWires::make(kernel);
  CreditSender tx(wires, cfg);
  // No receiver: no credit ever returns; exactly `window` flits may be
  // transmitted and the rest stage locally.
  std::size_t accepted = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    tx.begin_cycle();
    if (tx.can_accept()) {
      tx.accept(Flit(BitVector(8, static_cast<std::uint64_t>(cycle % 256)),
                     true, true));
      ++accepted;
    }
    tx.end_cycle();
    kernel.step();
  }
  EXPECT_EQ(tx.credits(), 0u);
  EXPECT_EQ(tx.flits_sent(), cfg.window);
  // Total outstanding (sent-but-uncredited + staged) is bounded at the
  // window, the same occupancy contract as the go-back-N sender.
  EXPECT_EQ(accepted, cfg.window);
  EXPECT_EQ(tx.in_flight(), cfg.window);
  // Every cycle after the window filled is a credit-starvation cycle.
  EXPECT_GT(tx.credit_stalls(), 0u);
  EXPECT_FALSE(tx.idle());
}

TEST(Credit, SenderStaysBusyUntilCreditsReturn) {
  // Quiescence correctness: a flit in flight on the link (sent, credit
  // not yet returned) must keep the sender non-idle, or Network could
  // report quiescent with flits still in the pipe.
  const auto cfg = ProtocolConfig::for_link(0);
  sim::Kernel kernel;
  auto wires = LinkWires::make(kernel);
  CreditSender tx(wires, cfg);
  CreditReceiver rx(wires, cfg);

  tx.begin_cycle();
  tx.accept(Flit(BitVector(8, 1), true, true));
  tx.end_cycle();
  kernel.step();  // flit on the wire
  EXPECT_TRUE(!tx.idle());

  // Receiver latches it but its owner cannot take it yet.
  tx.begin_cycle();
  EXPECT_FALSE(rx.begin_cycle(/*can_take=*/false).has_value());
  rx.end_cycle();
  tx.end_cycle();
  kernel.step();
  EXPECT_TRUE(!tx.idle());  // credit still outstanding

  // Owner drains; the credit beat crosses back next cycle.
  tx.begin_cycle();
  ASSERT_TRUE(rx.begin_cycle(/*can_take=*/true).has_value());
  rx.end_cycle();
  tx.end_cycle();
  kernel.step();
  tx.begin_cycle();  // collects the returned credit
  tx.end_cycle();
  EXPECT_TRUE(tx.idle());
}

TEST(FlowControl, NamesRoundTrip) {
  EXPECT_STREQ(flow_control_name(FlowControl::kAckNack), "ack_nack");
  EXPECT_STREQ(flow_control_name(FlowControl::kCredit), "credit");
  EXPECT_EQ(parse_flow_control("ack_nack"), FlowControl::kAckNack);
  EXPECT_EQ(parse_flow_control("credit"), FlowControl::kCredit);
  EXPECT_THROW(parse_flow_control("stop_and_wait"), Error);
}

TEST(FlowControl, SeamDispatchesToGoBackN) {
  // The ack_nack flavour of the seam must behave exactly like the bare
  // go-back-N endpoints, counters included.
  Harness h(120, 2, 0.4, FlowControl::kAckNack, 23);
  h.run_to_done(200000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(120);
  EXPECT_GT(h.receiver.rx().flow_rejections(), 0u);
  EXPECT_GT(h.sender.tx().retransmissions(), 0u);
  EXPECT_EQ(h.sender.tx().credit_stalls(), 0u);
}

}  // namespace
}  // namespace xpl::link

namespace xpl {
namespace {

noc::NetworkConfig credit_config() {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.flow = link::FlowControl::kCredit;
  return cfg;
}

TEST(CreditNetwork, RequiresReliableLinks) {
  noc::NetworkConfig cfg = credit_config();
  cfg.bit_error_rate = 0.001;
  EXPECT_THROW(
      noc::Network(
          topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg),
      Error);
}

TEST(CreditNetwork, RunsTrafficWithZeroRetransmissions) {
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)),
      credit_config());

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.25;  // loaded: back-pressure must appear
  tcfg.seed = 11;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(2000);
  net.run_until_quiescent(50000);
  ASSERT_TRUE(net.quiescent());

  const auto stats = traffic::collect_run(net, 2000);
  EXPECT_GT(stats.transactions, 0u);
  EXPECT_EQ(stats.retransmissions, 0u);       // credits never retransmit
  EXPECT_GT(stats.credit_stalls, 0u);         // but they do stall
  EXPECT_GT(stats.latency.count, 0u);
}

TEST(CreditNetwork, AckNackModeReportsZeroCreditStalls) {
  noc::NetworkConfig cfg = credit_config();
  cfg.flow = link::FlowControl::kAckNack;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.2;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(1000);
  net.run_until_quiescent(50000);
  EXPECT_EQ(net.total_credit_stalls(), 0u);
}

TEST(CreditSweep, FlowAxisRunsBothProtocols) {
  const sweep::SweepSpec spec = sweep::parse_sweep(
      "sweep flow_axis\n"
      "seed 5\n"
      "cycles 800\n"
      "width 2\nheight 2\n"
      "flow ack_nack credit\n"
      "injection_rate 0.1\n");
  EXPECT_EQ(spec.num_points(), 2u);

  const sweep::ResultTable table = sweep::SweepRunner(1).run(spec);
  ASSERT_EQ(table.size(), 2u);
  ASSERT_TRUE(table.row(0).ok) << table.row(0).error;
  ASSERT_TRUE(table.row(1).ok) << table.row(1).error;
  EXPECT_EQ(table.row(0).point.net.flow, link::FlowControl::kAckNack);
  EXPECT_EQ(table.row(1).point.net.flow, link::FlowControl::kCredit);
  EXPECT_NE(table.row(1).point.label().find("credit"), std::string::npos);
  EXPECT_EQ(table.row(1).retransmissions, 0u);

  // Sweeping the flow axis switches the exporters to the extended
  // column set; both rows carry it.
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find(",flow,"), std::string::npos);
  EXPECT_NE(csv.find(",credit_stalls,"), std::string::npos);
  EXPECT_NE(table.to_json().find("\"flow\": \"credit\""),
            std::string::npos);
}

TEST(CreditSweep, DefaultedFlowAxisKeepsLegacyColumns) {
  const sweep::SweepSpec spec = sweep::parse_sweep(
      "sweep legacy\nseed 5\ncycles 400\nwidth 2\nheight 2\n"
      "injection_rate 0.05\n");
  const sweep::ResultTable table = sweep::SweepRunner(1).run(spec);
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv.find(",flow,"), std::string::npos);
  EXPECT_EQ(csv.find("credit_stalls"), std::string::npos);
  EXPECT_EQ(table.to_json().find("\"flow\""), std::string::npos);
}

TEST(CreditSweep, SweptFlowAxisForcesColumnsEvenWhenAllRowsAckNack) {
  // Schema stability under sampling: a campaign that *sweeps* the flow
  // axis must export the extended columns even if every drawn/realized
  // point is ack_nack (possible under `samples N`), so one spec always
  // yields one schema.
  const sweep::SweepSpec spec = sweep::parse_sweep(
      "sweep sampled\nseed 5\ncycles 400\nwidth 2\nheight 2\n"
      "flow ack_nack ack_nack\n"  // swept axis, only ack_nack realized
      "injection_rate 0.05\n");
  const sweep::ResultTable table = sweep::SweepRunner(1).run(spec);
  for (const auto& r : table.rows()) {
    ASSERT_EQ(r.point.net.flow, link::FlowControl::kAckNack);
  }
  EXPECT_NE(table.to_csv().find(",flow,"), std::string::npos);
  EXPECT_NE(table.to_json().find("\"flow\": \"ack_nack\""),
            std::string::npos);
}

TEST(CreditSweep, SpecRoundTripsFlowAxis) {
  const char* text =
      "sweep ft\nflow ack_nack credit\nwidth 2\nheight 2\n";
  const sweep::SweepSpec spec = sweep::parse_sweep(text);
  ASSERT_EQ(spec.flows.size(), 2u);
  const std::string canon = sweep::write_sweep(spec);
  EXPECT_NE(canon.find("flow ack_nack credit"), std::string::npos);
  const sweep::SweepSpec again = sweep::parse_sweep(canon);
  EXPECT_EQ(sweep::write_sweep(again), canon);
  EXPECT_THROW(sweep::parse_sweep("sweep bad\nflow handshake\n"), Error);
}

}  // namespace
}  // namespace xpl
