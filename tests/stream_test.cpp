// Credit-based stream protocol: no loss, no overflow, full throughput.
#include "src/sim/stream.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "src/common/rng.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::sim {
namespace {

// Sends 0,1,2,... as fast as credits allow.
class Producer : public Module {
 public:
  Producer(StreamWires<int> wires, std::size_t credits, std::size_t total)
      : Module("producer"), out_(wires, credits), total_(total) {}

  void tick(Kernel&) override {
    out_.begin_cycle();
    if (next_ < total_ && out_.can_send()) {
      out_.send(static_cast<int>(next_++));
    }
    out_.end_cycle();
  }

  std::size_t sent() const { return next_; }

 private:
  StreamProducer<int> out_;
  std::size_t next_ = 0;
  std::size_t total_;
};

// Consumes with a configurable per-cycle probability (models a slow sink).
class Consumer : public Module {
 public:
  Consumer(StreamWires<int> wires, std::size_t capacity, double rate,
           std::uint64_t seed)
      : Module("consumer"), in_(wires, capacity), rate_(rate), rng_(seed) {}

  void tick(Kernel&) override {
    in_.begin_cycle();
    if (!in_.empty() && rng_.chance(rate_)) {
      received_.push_back(in_.front());
      in_.pop();
    }
    in_.end_cycle();
  }

  const std::vector<int>& received() const { return received_; }

 private:
  StreamConsumer<int> in_;
  double rate_;
  Rng rng_;
  std::vector<int> received_;
};

TEST(Stream, DeliversAllInOrderFastSink) {
  Kernel k;
  auto wires = StreamWires<int>::make(k);
  Producer p(wires, 4, 50);
  Consumer c(wires, 4, 1.0, 1);
  k.add_module(p);
  k.add_module(c);
  k.run(200);
  ASSERT_EQ(c.received().size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c.received()[i], i);
}

TEST(Stream, DeliversAllInOrderSlowSink) {
  Kernel k;
  auto wires = StreamWires<int>::make(k);
  Producer p(wires, 2, 40);
  Consumer c(wires, 2, 0.3, 2);
  k.add_module(p);
  k.add_module(c);
  k.run(1000);
  ASSERT_EQ(c.received().size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(c.received()[i], i);
}

TEST(Stream, SingleCreditStillFlows) {
  Kernel k;
  auto wires = StreamWires<int>::make(k);
  Producer p(wires, 1, 10);
  Consumer c(wires, 1, 1.0, 3);
  k.add_module(p);
  k.add_module(c);
  k.run(200);
  EXPECT_EQ(c.received().size(), 10u);
}

TEST(Stream, ThroughputApproachesOnePerCycleWithDeepCredits) {
  Kernel k;
  auto wires = StreamWires<int>::make(k);
  Producer p(wires, 8, 400);
  Consumer c(wires, 8, 1.0, 4);
  k.add_module(p);
  k.add_module(c);
  // 400 items in ~400 + small constant cycles.
  k.run(420);
  EXPECT_EQ(c.received().size(), 400u);
}

TEST(Stream, ProducerRespectsCredits) {
  Kernel k;
  auto wires = StreamWires<int>::make(k);
  Producer p(wires, 3, 100);
  // No consumer module: credits never return. Producer must stop at 3.
  k.add_module(p);
  k.run(50);
  EXPECT_EQ(p.sent(), 3u);
}

}  // namespace
}  // namespace xpl::sim
