// OCP burst sequences (MBurstSeq: INCR / WRAP / STREAM), locally between
// agents and end to end through the network.
#include <gtest/gtest.h>

#include "src/noc/network.hpp"
#include "src/ocp/agents.hpp"
#include "src/topology/generators.hpp"

namespace xpl::ocp {
namespace {

struct AgentHarness {
  sim::Kernel kernel;
  OcpWires wires;
  MasterCore master;
  SlaveCore slave;

  AgentHarness()
      : wires(OcpWires::make(kernel)),
        master("master", wires, aligned()),
        slave("slave", wires, {}) {
    kernel.add_module(master);
    kernel.add_module(slave);
  }
  static MasterCore::Config aligned() {
    MasterCore::Config c;
    c.req_credits = SlaveCore::Config{}.req_fifo_depth;
    return c;
  }
  void run() {
    kernel.run_until([&] { return master.quiescent(); }, 5000);
    kernel.run(20);
  }
};

TEST(BurstSeq, WrapWriteLandsInAlignedBlock) {
  AgentHarness h;
  // 4-beat WRAP starting mid-block (offset 0x110 in the 0x100..0x11F
  // block): beats land at 0x110, 0x118, 0x100, 0x108.
  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = 0x110;
  txn.burst_len = 4;
  txn.burst_seq = BurstSeq::kWrap;
  txn.data = {0xA, 0xB, 0xC, 0xD};
  h.master.push_transaction(txn);
  h.run();
  EXPECT_EQ(h.slave.peek(0x110), 0xAu);
  EXPECT_EQ(h.slave.peek(0x118), 0xBu);
  EXPECT_EQ(h.slave.peek(0x100), 0xCu);
  EXPECT_EQ(h.slave.peek(0x108), 0xDu);
}

TEST(BurstSeq, WrapReadReturnsRotatedBlock) {
  AgentHarness h;
  h.slave.poke(0x200, 1);
  h.slave.poke(0x208, 2);
  h.slave.poke(0x210, 3);
  h.slave.poke(0x218, 4);
  Transaction txn;
  txn.cmd = Cmd::kRead;
  txn.addr = 0x210;  // start at the third word of the block
  txn.burst_len = 4;
  txn.burst_seq = BurstSeq::kWrap;
  h.master.push_transaction(txn);
  h.run();
  const auto& result = h.master.completed().at(0);
  ASSERT_EQ(result.data.size(), 4u);
  EXPECT_EQ(result.data[0], 3u);
  EXPECT_EQ(result.data[1], 4u);
  EXPECT_EQ(result.data[2], 1u);
  EXPECT_EQ(result.data[3], 2u);
}

TEST(BurstSeq, StreamWritesHitOneAddress) {
  AgentHarness h;
  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = 0x300;
  txn.burst_len = 3;
  txn.burst_seq = BurstSeq::kStream;
  txn.data = {7, 8, 9};  // last beat wins at the single address
  h.master.push_transaction(txn);
  h.run();
  EXPECT_EQ(h.slave.peek(0x300), 9u);
  EXPECT_EQ(h.slave.peek(0x308), 0u);  // neighbours untouched
}

TEST(BurstSeq, StreamReadRepeatsOneAddress) {
  AgentHarness h;
  h.slave.poke(0x400, 0x5555);
  Transaction txn;
  txn.cmd = Cmd::kRead;
  txn.addr = 0x400;
  txn.burst_len = 3;
  txn.burst_seq = BurstSeq::kStream;
  h.master.push_transaction(txn);
  h.run();
  const auto& result = h.master.completed().at(0);
  ASSERT_EQ(result.data.size(), 3u);
  for (const auto d : result.data) EXPECT_EQ(d, 0x5555u);
}

TEST(BurstSeq, IncrRemainsDefault) {
  AgentHarness h;
  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = 0x500;
  txn.burst_len = 2;
  txn.data = {11, 22};
  h.master.push_transaction(txn);
  h.run();
  EXPECT_EQ(h.slave.peek(0x500), 11u);
  EXPECT_EQ(h.slave.peek(0x508), 22u);
}

TEST(BurstSeq, WrapSurvivesTheNetwork) {
  // The sequence code rides the packet header: verify it reaches the
  // remote slave intact across a mesh.
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);

  Transaction txn;
  txn.cmd = Cmd::kWriteNp;
  txn.addr = net.target_base(3) + 0x30;  // mid-block of 0x20..0x3F
  txn.burst_len = 4;
  txn.burst_seq = BurstSeq::kWrap;
  txn.data = {0x1, 0x2, 0x3, 0x4};
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(10000);
  EXPECT_EQ(net.slave(3).peek(0x30), 0x1u);
  EXPECT_EQ(net.slave(3).peek(0x38), 0x2u);
  EXPECT_EQ(net.slave(3).peek(0x20), 0x3u);
  EXPECT_EQ(net.slave(3).peek(0x28), 0x4u);
}

TEST(BurstSeq, StreamSurvivesTheNetwork) {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  net.slave(2).poke(0x40, 0xCAFE);
  Transaction txn;
  txn.cmd = Cmd::kRead;
  txn.addr = net.target_base(2) + 0x40;
  txn.burst_len = 4;
  txn.burst_seq = BurstSeq::kStream;
  net.master(1).push_transaction(txn);
  net.run_until_quiescent(10000);
  const auto& result = net.master(1).completed().at(0);
  ASSERT_EQ(result.data.size(), 4u);
  for (const auto d : result.data) EXPECT_EQ(d, 0xCAFEu);
}

TEST(BurstSeq, Names) {
  EXPECT_STREQ(burst_seq_name(BurstSeq::kIncr), "INCR");
  EXPECT_STREQ(burst_seq_name(BurstSeq::kWrap), "WRAP");
  EXPECT_STREQ(burst_seq_name(BurstSeq::kStream), "STREAM");
}

}  // namespace
}  // namespace xpl::ocp
