// Statistical sanity tests for the simulation RNG.
#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xpl {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(33);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(55);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BitBalance) {
  Rng rng(67);
  std::size_t ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(rng.next_u64()));
  }
  const double frac = static_cast<double>(ones) / (64.0 * n);
  EXPECT_NEAR(frac, 0.5, 0.005);
}

}  // namespace
}  // namespace xpl
