// Sweep specification: parsing, canonical round-trip, grid decoding,
// deterministic sampling and seed derivation; Pareto-front extraction on
// hand-built fixtures.
#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"
#include "src/sweep/pareto.hpp"
#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {
namespace {

constexpr const char* kSpecText = R"(# comment line
sweep scan            # trailing comment
seed 9
cycles 400
drain 2000
samples 0
target_mhz 900
read_fraction 0.25
max_burst 4
topology mesh ring
width 2 3
height 2
flit_width 32 64
fifo_depth 2 8
pattern uniform hotspot
injection_rate 0.01 0.05
)";

TEST(SweepSpec, ParsesEveryDirective) {
  const SweepSpec spec = parse_sweep(kSpecText);
  EXPECT_EQ(spec.name, "scan");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.sim_cycles, 400u);
  EXPECT_EQ(spec.drain_cycles, 2000u);
  EXPECT_EQ(spec.samples, 0u);
  EXPECT_DOUBLE_EQ(spec.target_mhz, 900.0);
  EXPECT_DOUBLE_EQ(spec.read_fraction, 0.25);
  EXPECT_EQ(spec.max_burst, 4u);
  EXPECT_EQ(spec.topologies, (std::vector<std::string>{"mesh", "ring"}));
  EXPECT_EQ(spec.widths, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(spec.flit_widths, (std::vector<std::size_t>{32, 64}));
  EXPECT_EQ(spec.fifo_depths, (std::vector<std::size_t>{2, 8}));
  EXPECT_EQ(spec.patterns, (std::vector<std::string>{"uniform", "hotspot"}));
  EXPECT_EQ(spec.injection_rates, (std::vector<double>{0.01, 0.05}));
  EXPECT_EQ(spec.grid_size(), 2u * 2 * 1 * 2 * 2 * 2 * 2);
}

TEST(SweepSpec, CanonicalRoundTrip) {
  const SweepSpec spec = parse_sweep(kSpecText);
  const std::string canonical = write_sweep(spec);
  const SweepSpec reparsed = parse_sweep(canonical);
  EXPECT_EQ(write_sweep(reparsed), canonical);
  EXPECT_EQ(reparsed.grid_size(), spec.grid_size());
  EXPECT_EQ(reparsed.injection_rates, spec.injection_rates);
}

TEST(SweepSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_sweep("bogus_directive 1\n"), Error);
  EXPECT_THROW(parse_sweep("seed nope\n"), Error);
  EXPECT_THROW(parse_sweep("topology klein_bottle\n"), Error);
  EXPECT_THROW(parse_sweep("pattern weighted\n"), Error);  // needs weights
  EXPECT_THROW(parse_sweep("flit_width\n"), Error);        // empty axis
}

/// Asserts parse_sweep rejects `text` and that the message names the
/// offending line.
void expect_line_error(const std::string& text, std::size_t line) {
  try {
    parse_sweep(text);
    FAIL() << "expected Error for: " << text;
  } catch (const Error& e) {
    const std::string prefix = "sweep line " + std::to_string(line) + ":";
    EXPECT_NE(std::string(e.what()).find(prefix), std::string::npos)
        << "message '" << e.what() << "' lacks '" << prefix << "'";
  }
}

TEST(SweepSpec, MalformedLinesReportTheirLineNumber) {
  // Each spec puts the broken directive on line 3 (after two valid ones).
  const std::string ok = "sweep x\nseed 1\n";
  expect_line_error(ok + "bogus_directive 1\n", 3);     // unknown axis/key
  expect_line_error(ok + "seed nope\n", 3);             // bad number
  expect_line_error(ok + "cycles\n", 3);                // missing value
  expect_line_error(ok + "topology klein_bottle\n", 3); // unknown value
  expect_line_error(ok + "flow sideband\n", 3);         // unknown protocol
  expect_line_error(ok + "routing zigzag\n", 3);        // unknown routing
  expect_line_error(ok + "vcs 99\n", 3);                // out of range
  expect_line_error(ok + "vcs 0\n", 3);                 // out of range
  expect_line_error(ok + "burstiness 1.5\n", 3);        // out of range
  expect_line_error(ok + "injection_rate 2\n", 3);      // out of range
  // The line number counts comments and blanks too.
  expect_line_error("sweep x\n# comment\n\nvcs 99\n", 4);
}

TEST(SweepSpec, GridDecodeCoversCrossProductInOrder) {
  SweepSpec spec;
  spec.widths = {2, 3};
  spec.heights = {2};
  spec.flit_widths = {32, 64};
  spec.injection_rates = {0.01, 0.05};
  ASSERT_EQ(spec.num_points(), 8u);

  // Innermost axis is the injection rate.
  EXPECT_DOUBLE_EQ(spec.point(0).traffic.injection_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.point(1).traffic.injection_rate, 0.05);
  EXPECT_EQ(spec.point(0).net.flit_width, 32u);
  EXPECT_EQ(spec.point(2).net.flit_width, 64u);
  EXPECT_EQ(spec.point(0).width, 2u);
  EXPECT_EQ(spec.point(4).width, 3u);

  // Every grid cell appears exactly once.
  std::set<std::string> labels;
  for (const auto& p : spec.points()) {
    EXPECT_EQ(p.index, labels.size());
    labels.insert(p.label());
  }
  EXPECT_EQ(labels.size(), 8u);
}

TEST(SweepSpec, SeedsDifferPerPointAndPerStream) {
  SweepSpec spec;
  spec.injection_rates = {0.01, 0.05};
  const SweepPoint a = spec.point(0);
  const SweepPoint b = spec.point(1);
  EXPECT_NE(a.net.seed, b.net.seed);
  EXPECT_NE(a.traffic.seed, b.traffic.seed);
  EXPECT_NE(a.net.seed, a.traffic.seed);
  // Deterministic: same spec, same seeds.
  EXPECT_EQ(spec.point(0).net.seed, a.net.seed);
}

TEST(SweepSpec, SampledSubsetIsDeterministicAndGridStable) {
  SweepSpec spec;
  spec.widths = {2, 3, 4};
  spec.flit_widths = {16, 32, 64};
  spec.injection_rates = {0.01, 0.02, 0.05};
  ASSERT_EQ(spec.grid_size(), 27u);

  SweepSpec sampled = spec;
  sampled.samples = 7;
  ASSERT_EQ(sampled.num_points(), 7u);

  // Same spec -> same subset, all points distinct.
  std::set<std::string> labels;
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 7; ++i) {
    const SweepPoint p = sampled.point(i);
    EXPECT_EQ(sampled.point(i).label(), p.label());
    labels.insert(p.label());
    seeds.insert(p.net.seed);
  }
  EXPECT_EQ(labels.size(), 7u);
  EXPECT_EQ(seeds.size(), 7u);

  // A sampled point's seeds depend on its grid cell, not its campaign
  // position: every sampled seed also occurs in the full grid.
  std::set<std::uint64_t> full_seeds;
  for (const auto& p : spec.points()) full_seeds.insert(p.net.seed);
  for (const std::uint64_t s : seeds) EXPECT_TRUE(full_seeds.count(s));
}

TEST(SweepSpec, TopologySwitchCounts) {
  SweepPoint p;
  p.width = 3;
  p.height = 2;
  p.topology = "mesh";
  EXPECT_EQ(p.num_switches(), 6u);
  EXPECT_EQ(p.build_topology().num_switches(), 6u);
  p.topology = "star";
  EXPECT_EQ(p.num_switches(), 4u);  // hub + 3 leaves
  EXPECT_EQ(p.build_topology().num_switches(), 4u);
  p.topology = "spidergon";
  EXPECT_EQ(p.num_switches(), 4u);  // rounded up to even
  p.topology = "ring";
  EXPECT_EQ(p.num_switches(), 3u);
}

TEST(Pareto, MinimizationFrontOnFixture) {
  // d dominated by a; the rest trade off.
  const std::vector<std::vector<double>> objectives{
      {1.0, 9.0},  // a
      {2.0, 5.0},  // b
      {4.0, 1.0},  // c
      {3.0, 9.5},  // d (worse than a on both)
  };
  EXPECT_EQ(pareto_front_min(objectives),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, EqualPointsBothSurvive) {
  const std::vector<std::vector<double>> objectives{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_front_min(objectives), (std::vector<std::size_t>{0, 1}));
}

/// Hand-built ResultTable fixture: front must minimize latency/area/power
/// and maximize throughput, skipping failed rows.
TEST(Pareto, ResultTableFrontOnFixture) {
  auto mk = [](std::size_t index, double lat, double thru, double area,
               double power, bool ok = true) {
    SweepResult r;
    r.point.index = index;
    r.ok = ok;
    r.avg_latency_cycles = lat;
    r.throughput_tpc = thru;
    r.area_mm2 = area;
    r.power_mw = power;
    return r;
  };
  ResultTable table(5);
  table.set(mk(0, 20.0, 0.10, 1.0, 50.0));   // small & slow — survives
  table.set(mk(1, 10.0, 0.20, 2.0, 80.0));   // fast & big — survives
  table.set(mk(2, 21.0, 0.09, 1.1, 51.0));   // dominated by 0
  table.set(mk(3, 10.0, 0.20, 2.0, 79.0));   // dominates 1 on power
  table.set(mk(4, 1.0, 9.0, 0.1, 1.0, false));  // failed: excluded
  EXPECT_EQ(table.pareto_front(), (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(table.num_ok(), 4u);
}

}  // namespace
}  // namespace xpl::sweep
