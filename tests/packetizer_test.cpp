// Packetization round trips at every paper flit width.
#include "src/packet/packetizer.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace xpl {
namespace {

PacketFormat format_for(std::size_t flit_width, std::size_t beat_width = 32) {
  PacketFormat f;
  f.header.port_bits = 3;
  f.header.max_hops = 4;  // 12 route bits: fits even 16-bit flits
  f.header.node_bits = 5;
  f.header.txn_bits = 4;
  f.header.thread_bits = 2;
  f.header.burst_bits = 5;
  f.header.addr_bits = 16;
  f.flit_width = flit_width;
  f.beat_width = beat_width;
  return f;
}

Packet sample_packet(Rng& rng, const PacketFormat& f, std::size_t beats) {
  Packet p;
  p.header.route = {1, 2, 3};
  p.header.cmd = beats ? PacketCmd::kWrite : PacketCmd::kRead;
  p.header.src = 4;
  p.header.dst = 11;
  p.header.txn_id = 7;
  p.header.burst_len = static_cast<std::uint32_t>(beats ? beats : 4);
  p.header.addr = 0x5678;
  for (std::size_t b = 0; b < beats; ++b) {
    BitVector beat(f.beat_width);
    for (std::size_t i = 0; i < f.beat_width; ++i) {
      beat.set(i, rng.chance(0.5));
    }
    p.beats.push_back(std::move(beat));
  }
  return p;
}

TEST(PacketFormat, FlitCountsMatchCeilingDivision) {
  const PacketFormat f = format_for(16);
  EXPECT_EQ(f.header_flits(), ceil_div(f.header.width(), 16));
  EXPECT_EQ(f.flits_per_beat(), 2u);  // 32-bit beats over 16-bit flits
  EXPECT_EQ(f.packet_flits(3), f.header_flits() + 6);
}

TEST(PacketFormat, RouteMustFitFirstFlit) {
  PacketFormat f = format_for(16);
  f.header.max_hops = 8;  // 24 route bits > 16-bit flit
  EXPECT_THROW(f.validate(), Error);
}

TEST(Packetize, HeadAndTailMarks) {
  Rng rng(1);
  const PacketFormat f = format_for(32);
  const Packet p = sample_packet(rng, f, 2);
  const auto flits = packetize(p, f);
  ASSERT_EQ(flits.size(), f.packet_flits(2));
  EXPECT_TRUE(flits.front().head);
  EXPECT_TRUE(flits.back().tail);
  for (std::size_t i = 1; i < flits.size(); ++i) {
    EXPECT_FALSE(flits[i].head);
  }
  for (std::size_t i = 0; i + 1 < flits.size(); ++i) {
    EXPECT_FALSE(flits[i].tail);
  }
}

TEST(Packetize, HeaderOnlyPacketIsSingleFlitWhenWide) {
  Rng rng(2);
  const PacketFormat f = format_for(64);
  const Packet p = sample_packet(rng, f, 0);
  const auto flits = packetize(p, f);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_TRUE(flits[0].head);
  EXPECT_TRUE(flits[0].tail);
}

TEST(Packetize, BeatWidthMismatchThrows) {
  Rng rng(3);
  const PacketFormat f = format_for(32);
  Packet p = sample_packet(rng, f, 1);
  p.beats[0] = BitVector(16);
  EXPECT_THROW(packetize(p, f), Error);
}

// Round-trip across the paper's flit-width sweep and several burst sizes.
class RoundTripSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RoundTripSweep, PacketSurvives) {
  const auto [flit_width, beats] = GetParam();
  Rng rng(flit_width * 100 + beats);
  const PacketFormat f = format_for(flit_width);
  const Packet p = sample_packet(rng, f, beats);
  const auto flits = packetize(p, f);

  Depacketizer depack(f);
  std::optional<Packet> out;
  for (std::size_t i = 0; i < flits.size(); ++i) {
    ASSERT_FALSE(out.has_value());
    out = depack.push(flits[i]);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(depack.idle());

  EXPECT_EQ(out->header.cmd, p.header.cmd);
  EXPECT_EQ(out->header.src, p.header.src);
  EXPECT_EQ(out->header.dst, p.header.dst);
  EXPECT_EQ(out->header.txn_id, p.header.txn_id);
  EXPECT_EQ(out->header.burst_len, p.header.burst_len);
  EXPECT_EQ(out->header.addr, p.header.addr);
  ASSERT_EQ(out->beats.size(), p.beats.size());
  for (std::size_t b = 0; b < beats; ++b) {
    EXPECT_EQ(out->beats[b], p.beats[b]) << "beat " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperWidths, RoundTripSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 32, 64, 128),
                       ::testing::Values<std::size_t>(0, 1, 3, 8)));

TEST(Depacketizer, BackToBackPackets) {
  Rng rng(9);
  const PacketFormat f = format_for(32);
  Depacketizer depack(f);
  for (int round = 0; round < 5; ++round) {
    const Packet p = sample_packet(rng, f, round % 3);
    std::optional<Packet> out;
    for (const Flit& flit : packetize(p, f)) {
      out = depack.push(flit);
    }
    ASSERT_TRUE(out.has_value()) << "round " << round;
    EXPECT_EQ(out->beats.size(), p.beats.size());
  }
}

TEST(Depacketizer, RejectsBodyFirst) {
  const PacketFormat f = format_for(32);
  Depacketizer depack(f);
  Flit body(BitVector(32), /*head=*/false, /*tail=*/false);
  EXPECT_THROW(depack.push(body), Error);
}

TEST(Depacketizer, RejectsHeadMidPacket) {
  Rng rng(10);
  const PacketFormat f = format_for(16);  // header spans several flits
  Depacketizer depack(f);
  const Packet p = sample_packet(rng, f, 1);
  const auto flits = packetize(p, f);
  ASSERT_GE(flits.size(), 2u);
  depack.push(flits[0]);
  Flit bad = flits[1];
  bad.head = true;
  EXPECT_THROW(depack.push(bad), Error);
}

TEST(Depacketizer, RejectsWrongWidthFlit) {
  const PacketFormat f = format_for(32);
  Depacketizer depack(f);
  Flit flit(BitVector(16), true, true);
  EXPECT_THROW(depack.push(flit), Error);
}

TEST(Depacketizer, FlitCounterTracksProgress) {
  Rng rng(11);
  const PacketFormat f = format_for(16);
  Depacketizer depack(f);
  const Packet p = sample_packet(rng, f, 2);
  const auto flits = packetize(p, f);
  for (std::size_t i = 0; i + 1 < flits.size(); ++i) {
    depack.push(flits[i]);
    EXPECT_EQ(depack.flits_so_far(), i + 1);
  }
  depack.push(flits.back());
  EXPECT_EQ(depack.flits_so_far(), 0u);  // reset after completion
}

}  // namespace
}  // namespace xpl
