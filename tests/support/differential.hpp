// Differential kernel-equivalence harness (PR 7, extended in PR 10).
//
// The activity-gated scheduler (sim::Scheduler::kGated) and the
// time-leap scheduler (sim::Scheduler::kTimeLeap) are pure
// optimizations: each must be *bit-exact* against the full scheduler on
// every observable — per-cycle signal values, end-of-run statistics,
// campaign exports, recorded traces. This header is the proof engine:
// it builds two identically-configured networks, one per scheduler,
// drives them in lockstep with twin traffic generators, and compares
// the kernels' signal digests every cycle. A divergence is reported
// with the first divergent cycle and the modules whose state differs,
// and scenarios shrink toward a minimal reproduction before reporting.
//
// The time-leap twin is proven at two granularities. Network::step()
// routes through Kernel::run(1), so a per-cycle-driven kTimeLeap
// network still takes the leap decision every cycle — a skipped
// (frozen) cycle is digest-compared against the reference *inside* the
// leapt region, not just at its ends. Chunked driving via
// traffic::TrafficDriver::run() then arms the driver's injector module
// and lets the kernel leap multi-cycle gaps wholesale, compared at the
// cycle counts where the two clocks realign.
//
// Used by tests/kernel_equiv_test.cpp (randomized sweep),
// tests/timeleap_test.cpp (leap corners), the fuzz suite, and the
// wake-hazard regression tests.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/link/flow.hpp"
#include "src/noc/network.hpp"
#include "src/sim/kernel.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::testsupport {

/// One randomized equivalence trial: everything needed to construct two
/// identical networks and their traffic, minus the scheduler choice.
struct DiffScenario {
  /// mesh | torus | ring | star | spidergon | cmesh
  std::string topology = "mesh";
  std::size_t width = 2;
  std::size_t height = 2;
  std::size_t concentration = 2;  ///< cmesh only: NIs per switch
  std::size_t vcs = 1;
  link::FlowControl flow = link::FlowControl::kAckNack;
  double bit_error_rate = 0.0;
  topology::RoutingAlgorithm routing = topology::RoutingAlgorithm::kXY;
  double injection_rate = 0.05;
  double burstiness = 0.0;
  std::size_t cycles = 400;        ///< driven cycles
  std::size_t drain_cycles = 6000; ///< extra lockstep cycles to drain
  std::uint64_t net_seed = 1;
  std::uint64_t traffic_seed = 1;

  topology::Topology build_topology() const {
    if (topology == "cmesh") {
      return topology::make_cmesh(width, height, concentration);
    }
    const std::size_t n = topology == "mesh" || topology == "torus"
                              ? width * height
                              : topology == "star" ? width + 1
                              : topology == "spidergon" ? width + (width % 2)
                                                        : width;
    const auto plan = topology::NiPlan::uniform(n, 1, 1);
    if (topology == "mesh") return topology::make_mesh(width, height, plan);
    if (topology == "torus") return topology::make_torus(width, height, plan);
    if (topology == "ring") return topology::make_ring(width, plan);
    if (topology == "star") return topology::make_star(width, plan);
    return topology::make_spidergon(width + (width % 2), plan);
  }

  noc::NetworkConfig net_config(sim::Scheduler scheduler,
                                std::size_t partitions = 1,
                                std::size_t sim_threads = 1) const {
    noc::NetworkConfig cfg;
    cfg.routing = routing;
    cfg.vcs = vcs;
    cfg.flow = flow;
    cfg.bit_error_rate = bit_error_rate;
    cfg.seed = net_seed;
    cfg.target_window = 1 << 12;
    cfg.scheduler = scheduler;
    cfg.partitions = partitions;
    cfg.sim_threads = sim_threads;
    return cfg;
  }

  traffic::TrafficConfig traffic_config() const {
    traffic::TrafficConfig cfg;
    cfg.injection_rate = injection_rate;
    cfg.burstiness = burstiness;
    cfg.seed = traffic_seed;
    return cfg;
  }

  /// Reproduction recipe, printed on failure.
  std::string to_string() const {
    std::ostringstream os;
    os << topology << " " << width << "x" << height;
    if (topology == "cmesh") os << " c" << concentration;
    os << " vcs=" << vcs
       << " flow=" << link::flow_control_name(flow)
       << " ber=" << bit_error_rate
       << " routing=" << topology::routing_name(routing)
       << " rate=" << injection_rate << " burst=" << burstiness
       << " cycles=" << cycles << " net_seed=" << net_seed
       << " traffic_seed=" << traffic_seed;
    return os.str();
  }
};

/// Outcome of one lockstep comparison.
struct DiffResult {
  bool ok = true;
  /// Cycle whose post-commit digest first differed (or the end-of-run
  /// stats comparison when the per-cycle digests agreed).
  std::uint64_t first_divergent_cycle = 0;
  std::string detail;  ///< human-readable attribution

  explicit operator bool() const { return ok; }
};

namespace detail {

/// Compares a handful of per-module observables and names the first
/// mismatch — digest divergence says *when*, this says *where*. The
/// labels default to the scheduler-equivalence pairing; the partition
/// harness passes "ref"/"part".
inline std::string attribute_divergence(noc::Network& full,
                                        noc::Network& gated,
                                        const char* label_a = "full",
                                        const char* label_b = "gated") {
  std::ostringstream os;
  for (std::size_t s = 0; s < full.num_switches(); ++s) {
    const std::string a = full.switch_at(s).debug_state();
    const std::string b = gated.switch_at(s).debug_state();
    if (a != b) {
      os << "\n  switch " << s << " " << label_a << ":  " << a
         << "\n  switch " << s << " " << label_b << ": " << b;
    }
  }
  for (std::size_t i = 0; i < full.num_initiators(); ++i) {
    if (full.master(i).issued_count() != gated.master(i).issued_count() ||
        full.master(i).completed().size() !=
            gated.master(i).completed().size()) {
      os << "\n  master " << i << ": issued "
         << full.master(i).issued_count() << "/"
         << gated.master(i).issued_count() << " completed "
         << full.master(i).completed().size() << "/"
         << gated.master(i).completed().size();
    }
  }
  for (std::size_t t = 0; t < full.num_targets(); ++t) {
    if (full.target_ni(t).packets_received() !=
        gated.target_ni(t).packets_received()) {
      os << "\n  target_ni " << t << ": packets_received "
         << full.target_ni(t).packets_received() << "/"
         << gated.target_ni(t).packets_received();
    }
  }
  os << "\n  awake(" << label_b << ") = " << gated.kernel().awake_count()
     << "/" << gated.kernel().module_count();
  return os.str();
}

}  // namespace detail

/// Lockstep comparator over caller-built twins: `full` and `gated` must
/// be identically constructed except for the scheduler, and the drivers
/// identically seeded. Drives both for `cycles`, then drains, comparing
/// the kernels' signal digests after every cycle and the end-of-run
/// statistics at the end. `describe` labels the failure report. This is
/// the reusable core: DiffScenario-based callers go through
/// run_differential below; suites with their own topology generators
/// (tests/fuzz_test.cpp) call this directly. The labels default to the
/// full/gated pairing; the time-leap runners pass "gated"/"leap".
inline DiffResult run_lockstep(noc::Network& full, noc::Network& gated,
                               traffic::TrafficDriver& full_driver,
                               traffic::TrafficDriver& gated_driver,
                               std::size_t cycles, std::size_t drain_cycles,
                               const std::string& describe,
                               const char* label_a = "full",
                               const char* label_b = "gated") {
  DiffResult result;
  auto diverged = [&](std::uint64_t cycle, const char* phase) {
    result.ok = false;
    result.first_divergent_cycle = cycle;
    std::ostringstream os;
    os << "digest divergence at cycle " << cycle << " (" << phase
       << " phase)\n  scenario: " << describe
       << detail::attribute_divergence(full, gated, label_a, label_b);
    result.detail = os.str();
    return result;
  };

  for (std::size_t c = 0; c < cycles; ++c) {
    full_driver.step();
    gated_driver.step();
    full.step();
    gated.step();
    if (full.kernel().digest() != gated.kernel().digest()) {
      return diverged(full.kernel().cycle(), "driven");
    }
  }
  for (std::size_t c = 0; c < drain_cycles; ++c) {
    if (full.quiescent() && gated.quiescent()) break;
    full.step();
    gated.step();
    if (full.kernel().digest() != gated.kernel().digest()) {
      return diverged(full.kernel().cycle(), "drain");
    }
  }
  if (full.quiescent() != gated.quiescent()) {
    result.ok = false;
    result.first_divergent_cycle = full.kernel().cycle();
    result.detail = "drain divergence (" + std::string(label_a) + " " +
                    std::string(full.quiescent() ? "quiescent" : "stuck") +
                    ", " + std::string(label_b) + " " +
                    std::string(gated.quiescent() ? "quiescent" : "stuck") +
                    ")\n  scenario: " + describe +
                    detail::attribute_divergence(full, gated, label_a,
                                                 label_b);
    return result;
  }

  // Per-cycle digests agreed; the aggregate statistics must too.
  const auto fs = traffic::collect_run(full, cycles);
  const auto gs = traffic::collect_run(gated, cycles);
  std::ostringstream os;
  auto check = [&os, label_a, label_b](const char* what, auto a, auto b) {
    if (a != b) {
      os << "\n  " << what << ": " << label_a << "=" << a << " " << label_b
         << "=" << b;
    }
  };
  check("transactions", fs.transactions, gs.transactions);
  check("latency.mean", fs.latency.mean, gs.latency.mean);
  check("latency.p95", fs.latency.p95, gs.latency.p95);
  check("throughput", fs.throughput, gs.throughput);
  check("link_flits", fs.link_flits, gs.link_flits);
  check("retransmissions", fs.retransmissions, gs.retransmissions);
  check("credit_stalls", fs.credit_stalls, gs.credit_stalls);
  if (!os.str().empty()) {
    result.ok = false;
    result.first_divergent_cycle = full.kernel().cycle();
    result.detail = "stats divergence after identical digests (scenario: " +
                    describe + ")" + os.str();
  }
  return result;
}

/// Lockstep comparator for the partitioned kernel (PR 8): `ref` is the
/// unpartitioned reference, `part` a partitioned twin (any partition and
/// thread count). Digests are only comparable at epoch boundaries — the
/// partitioned kernel commits a whole conservative window per barrier —
/// so the driven phase advances both networks in chunks of `part`'s
/// lookahead and compares after each chunk; the drain then runs per
/// cycle (a 1-cycle epoch is always legal), exercising quiescence
/// detection at the same granularity run_lockstep uses. Signal creation
/// order is partition-invariant, so equal digests mean byte-identical
/// committed state, not merely "similar".
inline DiffResult run_lockstep_partitioned(
    noc::Network& ref, noc::Network& part,
    traffic::TrafficDriver& ref_driver, traffic::TrafficDriver& part_driver,
    std::size_t cycles, std::size_t drain_cycles,
    const std::string& describe) {
  DiffResult result;
  auto diverged = [&](std::uint64_t cycle, const char* phase) {
    result.ok = false;
    result.first_divergent_cycle = cycle;
    std::ostringstream os;
    os << "digest divergence at cycle " << cycle << " (" << phase
       << " phase)\n  scenario: " << describe
       << detail::attribute_divergence(ref, part, "ref", "part");
    result.detail = os.str();
    return result;
  };

  const std::size_t k =
      std::max<std::size_t>(1, part.kernel().lookahead());
  std::size_t done = 0;
  while (done < cycles) {
    const std::size_t n = std::min(k, cycles - done);
    ref_driver.run(n);
    part_driver.run(n);
    done += n;
    if (ref.kernel().digest() != part.kernel().digest()) {
      return diverged(ref.kernel().cycle(), "driven");
    }
  }
  for (std::size_t c = 0; c < drain_cycles; ++c) {
    if (ref.quiescent() && part.quiescent()) break;
    ref.step();
    part.step();
    if (ref.kernel().digest() != part.kernel().digest()) {
      return diverged(ref.kernel().cycle(), "drain");
    }
  }
  if (ref.quiescent() != part.quiescent()) {
    result.ok = false;
    result.first_divergent_cycle = ref.kernel().cycle();
    result.detail =
        "drain divergence (ref " +
        std::string(ref.quiescent() ? "quiescent" : "stuck") + ", part " +
        std::string(part.quiescent() ? "quiescent" : "stuck") +
        ")\n  scenario: " + describe +
        detail::attribute_divergence(ref, part, "ref", "part");
    return result;
  }

  const auto rs = traffic::collect_run(ref, cycles);
  const auto ps = traffic::collect_run(part, cycles);
  std::ostringstream os;
  auto check = [&os](const char* what, auto a, auto b) {
    if (a != b) os << "\n  " << what << ": ref=" << a << " part=" << b;
  };
  check("transactions", rs.transactions, ps.transactions);
  check("latency.mean", rs.latency.mean, ps.latency.mean);
  check("latency.p95", rs.latency.p95, ps.latency.p95);
  check("throughput", rs.throughput, ps.throughput);
  check("link_flits", rs.link_flits, ps.link_flits);
  check("retransmissions", rs.retransmissions, ps.retransmissions);
  check("credit_stalls", rs.credit_stalls, ps.credit_stalls);
  check("avg_link_utilization", rs.avg_link_utilization,
        ps.avg_link_utilization);
  if (!os.str().empty()) {
    result.ok = false;
    result.first_divergent_cycle = ref.kernel().cycle();
    result.detail = "stats divergence after identical digests (scenario: " +
                    describe + ")" + os.str();
  }
  return result;
}

/// Builds the full- and gated-scheduler twins of `scenario`, drives them
/// in lockstep, and compares the kernels' signal digests after every
/// cycle (driven phase and drain phase alike), then the end-of-run
/// statistics. Returns the first divergence, if any.
inline DiffResult run_differential(const DiffScenario& scenario) {
  noc::Network full(scenario.build_topology(),
                    scenario.net_config(sim::Scheduler::kFull));
  noc::Network gated(scenario.build_topology(),
                     scenario.net_config(sim::Scheduler::kGated));
  traffic::TrafficDriver full_driver(full, scenario.traffic_config());
  traffic::TrafficDriver gated_driver(gated, scenario.traffic_config());
  return run_lockstep(full, gated, full_driver, gated_driver,
                      scenario.cycles, scenario.drain_cycles,
                      scenario.to_string());
}

/// Time-leap differential (PR 10): kGated reference vs kTimeLeap twin,
/// proven at both leap granularities.
///
/// Leg 1 drives both networks per cycle through run_lockstep. Because
/// Network::step() is Kernel::run(1), the twin's kernel takes the leap
/// decision every cycle and skips (freezes) each quiescent one — so the
/// digest comparison runs *inside* leapt regions: a frozen cycle must
/// be byte-identical to the reference's ticked one, which is exactly
/// the "skipped ticks are observable no-ops" obligation.
///
/// Leg 2 re-runs the scenario advancing the twin in mixed-width
/// driver.run() spans. That path registers the driver's injector module
/// (TrafficDriver does so only under an unpartitioned kTimeLeap
/// kernel), so multi-cycle calendar leaps, injector look-ahead, and
/// wake-at-leap-target all engage; digests compare wherever the two
/// clocks realign, and the drain advances both sides in fixed windows.
inline DiffResult run_differential_timeleap(const DiffScenario& scenario) {
  {
    noc::Network gated(scenario.build_topology(),
                       scenario.net_config(sim::Scheduler::kGated));
    noc::Network leap(scenario.build_topology(),
                      scenario.net_config(sim::Scheduler::kTimeLeap));
    traffic::TrafficDriver gated_driver(gated, scenario.traffic_config());
    traffic::TrafficDriver leap_driver(leap, scenario.traffic_config());
    DiffResult per_cycle = run_lockstep(
        gated, leap, gated_driver, leap_driver, scenario.cycles,
        scenario.drain_cycles, scenario.to_string() + " [leap per-cycle]",
        "gated", "leap");
    if (!per_cycle.ok) return per_cycle;
  }

  noc::Network ref(scenario.build_topology(),
                   scenario.net_config(sim::Scheduler::kGated));
  noc::Network leap(scenario.build_topology(),
                    scenario.net_config(sim::Scheduler::kTimeLeap));
  traffic::TrafficDriver ref_driver(ref, scenario.traffic_config());
  traffic::TrafficDriver leap_driver(leap, scenario.traffic_config());
  const std::string describe = scenario.to_string() + " [leap chunked]";

  DiffResult result;
  auto diverged = [&](std::uint64_t cycle, const char* phase) {
    result.ok = false;
    result.first_divergent_cycle = cycle;
    std::ostringstream os;
    os << "digest divergence at cycle " << cycle << " (" << phase
       << " phase)\n  scenario: " << describe
       << detail::attribute_divergence(ref, leap, "gated", "leap");
    result.detail = os.str();
    return result;
  };

  // Mixed span widths: shorter than, comparable to, and much longer than
  // typical idle gaps, so leaps land both inside spans and truncated at
  // span boundaries (the wake-at-leap-target edge).
  static constexpr std::size_t kSpans[] = {1, 7, 3, 64, 2, 13, 33, 5};
  std::size_t done = 0;
  std::size_t pick = 0;
  while (done < scenario.cycles) {
    const std::size_t n = std::min(kSpans[pick++ % 8],
                                   scenario.cycles - done);
    ref_driver.run(n);
    leap_driver.run(n);
    done += n;
    if (ref.kernel().digest() != leap.kernel().digest()) {
      return diverged(ref.kernel().cycle(), "driven");
    }
  }
  for (std::size_t c = 0; c < scenario.drain_cycles; c += 16) {
    if (ref.quiescent() && leap.quiescent()) break;
    const std::size_t n =
        std::min<std::size_t>(16, scenario.drain_cycles - c);
    ref.step(n);
    leap.step(n);
    if (ref.kernel().digest() != leap.kernel().digest()) {
      return diverged(ref.kernel().cycle(), "drain");
    }
  }
  if (ref.quiescent() != leap.quiescent()) {
    result.ok = false;
    result.first_divergent_cycle = ref.kernel().cycle();
    result.detail =
        "drain divergence (gated " +
        std::string(ref.quiescent() ? "quiescent" : "stuck") + ", leap " +
        std::string(leap.quiescent() ? "quiescent" : "stuck") +
        ")\n  scenario: " + describe +
        detail::attribute_divergence(ref, leap, "gated", "leap");
    return result;
  }

  const auto rs = traffic::collect_run(ref, scenario.cycles);
  const auto ls = traffic::collect_run(leap, scenario.cycles);
  std::ostringstream os;
  auto check = [&os](const char* what, auto a, auto b) {
    if (a != b) os << "\n  " << what << ": gated=" << a << " leap=" << b;
  };
  check("transactions", rs.transactions, ls.transactions);
  check("latency.mean", rs.latency.mean, ls.latency.mean);
  check("latency.p95", rs.latency.p95, ls.latency.p95);
  check("throughput", rs.throughput, ls.throughput);
  check("link_flits", rs.link_flits, ls.link_flits);
  check("retransmissions", rs.retransmissions, ls.retransmissions);
  check("credit_stalls", rs.credit_stalls, ls.credit_stalls);
  check("avg_link_utilization", rs.avg_link_utilization,
        ls.avg_link_utilization);
  if (!os.str().empty()) {
    result.ok = false;
    result.first_divergent_cycle = ref.kernel().cycle();
    result.detail = "stats divergence after identical digests (scenario: " +
                    describe + ")" + os.str();
  }
  return result;
}

/// Partitioned time-leap twin vs the unpartitioned gated reference:
/// partition-local leaps are capped at the epoch barrier and the
/// wholesale fast-forward only fires when every partition sleeps, so
/// the PR 8 barrier protocol (digests compared per epoch, per-cycle
/// drain) applies unchanged.
inline DiffResult run_differential_timeleap_partitioned(
    const DiffScenario& scenario, std::size_t partitions,
    std::size_t sim_threads) {
  noc::Network ref(scenario.build_topology(),
                   scenario.net_config(sim::Scheduler::kGated));
  noc::Network part(scenario.build_topology(),
                    scenario.net_config(sim::Scheduler::kTimeLeap,
                                        partitions, sim_threads));
  traffic::TrafficDriver ref_driver(ref, scenario.traffic_config());
  traffic::TrafficDriver part_driver(part, scenario.traffic_config());
  std::ostringstream label;
  label << scenario.to_string() << " [leap partitioned p=" << partitions
        << " t=" << sim_threads << "]";
  return run_lockstep_partitioned(ref, part, ref_driver, part_driver,
                                  scenario.cycles, scenario.drain_cycles,
                                  label.str());
}

/// Greedy scenario shrinking: tries a fixed set of simplifying mutations
/// (shorter run, calmer traffic, fewer lanes, smaller topology) and
/// keeps each one that still reproduces a divergence. Returns the
/// minimal still-failing scenario (the input if nothing smaller fails).
/// `still_fails` decides reproduction, so the same shrinker serves the
/// full/gated and gated/time-leap pairings.
template <typename StillFails>
inline DiffScenario shrink_divergence_with(DiffScenario scenario,
                                           StillFails still_fails) {
  // Cut the driven window toward the first divergent cycle first — every
  // later mutation then re-verifies against the cheap short run.
  for (int pass = 0; pass < 3; ++pass) {
    DiffScenario t = scenario;
    t.cycles = std::max<std::size_t>(1, t.cycles / 2);
    if (t.cycles < scenario.cycles && still_fails(t)) {
      scenario = t;
      continue;
    }
    break;
  }
  {
    DiffScenario t = scenario;
    t.burstiness = 0.0;
    if (scenario.burstiness != 0.0 && still_fails(t)) scenario = t;
  }
  {
    DiffScenario t = scenario;
    t.bit_error_rate = 0.0;
    if (scenario.bit_error_rate != 0.0 && still_fails(t)) scenario = t;
  }
  {
    DiffScenario t = scenario;
    t.injection_rate = scenario.injection_rate / 4;
    if (still_fails(t)) scenario = t;
  }
  // Lane reduction only where vcs == 1 routes stay deadlock-free.
  if (scenario.vcs > 1 && (scenario.topology == "mesh" ||
                           scenario.topology == "star")) {
    DiffScenario t = scenario;
    t.vcs = 1;
    if (still_fails(t)) scenario = t;
  }
  if (scenario.topology == "mesh" || scenario.topology == "torus") {
    while (scenario.width > 2 || scenario.height > 2) {
      DiffScenario t = scenario;
      if (t.width > 2) --t.width;
      else --t.height;
      if (!still_fails(t)) break;
      scenario = t;
    }
  } else {
    while (scenario.width > 3) {
      DiffScenario t = scenario;
      --t.width;
      if (!still_fails(t)) break;
      scenario = t;
    }
  }
  return scenario;
}

/// Full/gated shrinker (the PR 7 behavior).
inline DiffScenario shrink_divergence(DiffScenario scenario) {
  return shrink_divergence_with(std::move(scenario),
                                [](const DiffScenario& s) {
                                  return !run_differential(s).ok;
                                });
}

/// run_differential + automatic shrinking on failure: the returned
/// result's detail describes the *minimal* reproduction.
inline DiffResult run_differential_shrunk(const DiffScenario& scenario) {
  DiffResult result = run_differential(scenario);
  if (result.ok) return result;
  const DiffScenario minimal = shrink_divergence(scenario);
  DiffResult shrunk = run_differential(minimal);
  if (!shrunk.ok) {
    shrunk.detail += "\n  (shrunk from: " + scenario.to_string() + ")";
    return shrunk;
  }
  return result;  // shrinking raced a flaky repro; report the original
}

/// run_differential_timeleap + automatic shrinking on failure.
inline DiffResult run_differential_timeleap_shrunk(
    const DiffScenario& scenario) {
  DiffResult result = run_differential_timeleap(scenario);
  if (result.ok) return result;
  const DiffScenario minimal = shrink_divergence_with(
      scenario,
      [](const DiffScenario& s) { return !run_differential_timeleap(s).ok; });
  DiffResult shrunk = run_differential_timeleap(minimal);
  if (!shrunk.ok) {
    shrunk.detail += "\n  (shrunk from: " + scenario.to_string() + ")";
    return shrunk;
  }
  return result;  // shrinking raced a flaky repro; report the original
}

}  // namespace xpl::testsupport
