// Graphviz export.
#include "src/topology/dot.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "src/topology/generators.hpp"

namespace xpl::topology {
namespace {

TEST(Dot, ContainsAllSwitchesAndNis) {
  const auto topo = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  const std::string dot = to_dot(topo);
  EXPECT_EQ(dot.substr(0, 12), "digraph noc ");
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    EXPECT_NE(dot.find("sw" + std::to_string(s) + " [label=\"" +
                       topo.switch_node(s).name + "\""),
              std::string::npos);
  }
  for (std::uint32_t n = 0; n < topo.num_nis(); ++n) {
    EXPECT_NE(dot.find("ni" + std::to_string(n)), std::string::npos);
  }
}

TEST(Dot, CmeshRendersEveryConcentratedNi) {
  const auto topo = make_cmesh(2, 2, 4);
  const std::string dot = to_dot(topo);
  EXPECT_EQ(dot.substr(0, 12), "digraph noc ");
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    EXPECT_NE(dot.find("sw" + std::to_string(s)), std::string::npos);
  }
  // All 32 NIs (4 initiators + 4 targets per switch) appear.
  EXPECT_EQ(topo.num_nis(), 32u);
  for (std::uint32_t n = 0; n < topo.num_nis(); ++n) {
    EXPECT_NE(dot.find("ni" + std::to_string(n)), std::string::npos);
  }
}

TEST(Dot, DuplexPairsCollapse) {
  const auto topo = make_ring(4, NiPlan::uniform(4, 1, 0));
  DotOptions options;
  options.show_nis = false;  // NI edges also render dir=both
  const std::string dot = to_dot(topo, options);
  // 8 directed links collapse to 4 double-headed edges (the dateline wrap
  // pair carries an extra style attribute).
  std::size_t edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("dir=both", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(Dot, DatelineLinksDashed) {
  const auto topo = make_ring(4, NiPlan::uniform(4, 1, 0));
  DotOptions options;
  options.show_nis = false;  // NI attachment edges are dashed by style
  const std::string dot = to_dot(topo, options);
  // Exactly one collapsed edge — the ring's wrap pair — renders dashed.
  std::size_t dashed = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("style=dashed", pos)) != std::string::npos) {
    ++dashed;
    ++pos;
  }
  EXPECT_EQ(dashed, 1u);

  options.show_datelines = false;
  EXPECT_EQ(to_dot(topo, options).find("style=dashed"), std::string::npos);
}

TEST(Dot, VcCountLabelled) {
  const auto topo = make_torus(3, 3, NiPlan::uniform(9, 1, 0));
  DotOptions options;
  options.vcs = 2;
  const std::string dot = to_dot(topo, options);
  EXPECT_NE(dot.find("label=\"2vc\""), std::string::npos);
  // Single-lane diagrams stay free of lane annotations.
  EXPECT_EQ(to_dot(topo).find("vc"), std::string::npos);
}

TEST(Dot, NoCollapseKeepsEveryLink) {
  const auto topo = make_ring(4, NiPlan::uniform(4, 1, 0));
  DotOptions options;
  options.collapse_duplex = false;
  options.show_nis = false;
  const std::string dot = to_dot(topo, options);
  std::size_t edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find(" -> sw", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(edges, topo.num_links());
  EXPECT_EQ(dot.find("ni0"), std::string::npos);
}

TEST(Dot, StagesLabelled) {
  Topology topo;
  const auto a = topo.add_switch("a");
  const auto b = topo.add_switch("b");
  topo.add_duplex(a, b, /*stages=*/3);
  topo.attach_initiator(a);
  topo.attach_target(b);
  const std::string dot = to_dot(topo);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

TEST(Dot, SaveWritesFile) {
  const auto topo = make_mesh(2, 2, NiPlan::uniform(4, 1, 0));
  const std::string path = ::testing::TempDir() + "/xpl_topo.dot";
  save_dot(topo, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "digraph noc {");
}

}  // namespace
}  // namespace xpl::topology
