// Pipelined link: latency, error injection statistics.
//
// Timing note: testbench writes to a Signal commit at the end of the next
// kernel step (two-phase semantics), and the link itself registers once,
// so a flit written before step k is visible at the far end after step
// k + 1 + stages.
#include "src/link/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xpl::link {
namespace {

struct Harness {
  sim::Kernel kernel;
  LinkWires up;
  LinkWires down;
  PipelinedLink link;

  explicit Harness(PipelinedLink::Config cfg)
      : up(LinkWires::make(kernel)),
        down(LinkWires::make(kernel)),
        link("dut", up, down, cfg) {
    kernel.add_module(link);
  }

  static Flit make_flit(std::uint64_t value) {
    Flit f(BitVector(32, value & 0xFFFFFFFF), true, true);
    flit_seal(f, CrcKind::kCrc8);
    return f;
  }

  // Streams `n` flits back to back and returns everything that came out.
  std::vector<Flit> stream(int n) {
    std::vector<Flit> out;
    auto collect = [&] {
      if (down.fwd->read().valid) out.push_back(down.fwd->read().flit);
    };
    for (int i = 0; i < n; ++i) {
      up.fwd->write(FlitBeat{true, make_flit(i)});
      kernel.step();
      collect();
    }
    up.fwd->write(FlitBeat{});
    for (std::size_t i = 0; i < link.config().stages + 4; ++i) {
      kernel.step();
      collect();
    }
    return out;
  }
};

TEST(PipelinedLink, ZeroStageLatencyIsTwoKernelCycles) {
  Harness h({});
  h.up.fwd->write(FlitBeat{true, Harness::make_flit(0x42)});
  h.kernel.step();  // write commits: flit on the wire
  EXPECT_FALSE(h.down.fwd->read().valid);
  h.kernel.step();  // link forwards
  ASSERT_TRUE(h.down.fwd->read().valid);
  EXPECT_EQ(h.down.fwd->read().flit.payload.to_u64(), 0x42u);
}

TEST(PipelinedLink, EachStageAddsOneCycle) {
  for (const std::size_t stages : {1u, 2u, 5u}) {
    PipelinedLink::Config cfg;
    cfg.stages = stages;
    Harness h(cfg);
    h.up.fwd->write(FlitBeat{true, Harness::make_flit(0x77)});
    h.kernel.step();
    h.up.fwd->write(FlitBeat{});  // single pulse
    for (std::size_t i = 0; i < stages + 1; ++i) {
      EXPECT_FALSE(h.down.fwd->read().valid)
          << "early exit, stages=" << stages << " i=" << i;
      h.kernel.step();
    }
    EXPECT_TRUE(h.down.fwd->read().valid) << "stages=" << stages;
  }
}

TEST(PipelinedLink, ReverseAckPathMirrorsDelay) {
  PipelinedLink::Config cfg;
  cfg.stages = 3;
  Harness h(cfg);
  h.down.rev->write(AckBeat{true, true, 9});
  h.kernel.step();
  h.down.rev->write(AckBeat{});
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(h.up.rev->read().valid) << "cycle " << i;
    h.kernel.step();
  }
  ASSERT_TRUE(h.up.rev->read().valid);
  EXPECT_EQ(h.up.rev->read().seqno, 9u);
  EXPECT_TRUE(h.up.rev->read().ack);
}

TEST(PipelinedLink, BackToBackFlitsAllArriveInOrder) {
  PipelinedLink::Config cfg;
  cfg.stages = 2;
  Harness h(cfg);
  const auto out = h.stream(20);
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].payload.to_u64(), i);
  }
  EXPECT_EQ(h.link.flits_carried(), 20u);
}

TEST(PipelinedLink, NoErrorsWhenRateZero) {
  Harness h({});
  const auto out = h.stream(100);
  ASSERT_EQ(out.size(), 100u);
  for (const Flit& f : out) {
    EXPECT_TRUE(flit_verify(f, CrcKind::kCrc8));
  }
  EXPECT_EQ(h.link.flits_corrupted(), 0u);
}

TEST(PipelinedLink, ErrorRateMatchesConfiguration) {
  PipelinedLink::Config cfg;
  cfg.bit_error_rate = 0.01;
  cfg.seed = 5;
  Harness h(cfg);
  const int n = 3000;
  const auto out = h.stream(n);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  int bad = 0;
  for (const Flit& f : out) {
    if (!flit_verify(f, CrcKind::kCrc8)) ++bad;
  }
  // ~43 protected bits/flit at BER 0.01 -> roughly a third of flits hit;
  // CRC8 catches nearly all of them.
  const double frac = static_cast<double>(h.link.flits_corrupted()) / n;
  EXPECT_GT(frac, 0.20);
  EXPECT_LT(frac, 0.50);
  EXPECT_GT(bad, 0);
  EXPECT_LE(static_cast<std::uint64_t>(bad), h.link.flits_corrupted());
  EXPECT_GT(static_cast<std::uint64_t>(bad),
            h.link.flits_corrupted() * 90 / 100);
}

TEST(PipelinedLink, IdleCyclesCarryNothing) {
  Harness h({});
  h.kernel.run(10);
  EXPECT_EQ(h.link.flits_carried(), 0u);
  EXPECT_FALSE(h.down.fwd->read().valid);
}

}  // namespace
}  // namespace xpl::link
