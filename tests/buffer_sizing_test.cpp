// Compiler buffer-sizing pass: the paper's per-instance "component
// optimizations: buffer sizes".
#include <gtest/gtest.h>

#include "src/compiler/compiler.hpp"
#include "src/synth/component_models.hpp"
#include "src/topology/generators.hpp"

namespace xpl::compiler {
namespace {

NocSpec mesh_spec(std::size_t w, std::size_t h) {
  NocSpec spec;
  spec.name = "buf";
  spec.topo = topology::make_mesh(
      w, h, topology::NiPlan::uniform(w * h, 1, 1));
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  return spec;
}

TEST(BufferSizing, CentreGetsDeeperQueuesThanCorners) {
  NocSpec spec = mesh_spec(3, 3);
  XpipesCompiler xpipes;
  const auto depths = xpipes.optimize_buffer_sizes(spec, 2, 8);
  ASSERT_EQ(depths.size(), 9u);
  // XY routing concentrates traffic through the centre switch (id 4).
  EXPECT_GT(depths[4], depths[0]);
  EXPECT_GT(depths[4], depths[8]);
  EXPECT_EQ(depths[4], 8u);  // hottest switch gets max depth
  for (const auto d : depths) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 8u);
  }
}

TEST(BufferSizing, OverrideReachesInstantiatedSwitches) {
  NocSpec spec = mesh_spec(3, 3);
  XpipesCompiler xpipes;
  const auto depths = xpipes.optimize_buffer_sizes(spec, 2, 8);
  auto net = xpipes.build_simulation(spec);
  for (std::size_t s = 0; s < net->num_switches(); ++s) {
    EXPECT_EQ(net->switch_at(s).config().output_fifo_depth, depths[s])
        << "switch " << s;
  }
}

TEST(BufferSizing, SavesAreaVersusUniformMaxDepth) {
  XpipesCompiler xpipes;
  NocSpec uniform = mesh_spec(3, 3);
  uniform.net.output_fifo_depth = 8;  // everyone sized for the worst case
  NocSpec sized = mesh_spec(3, 3);
  xpipes.optimize_buffer_sizes(sized, 2, 8);
  const double uniform_area = xpipes.estimate(uniform, 800.0).total_area_mm2;
  const double sized_area = xpipes.estimate(sized, 800.0).total_area_mm2;
  EXPECT_LT(sized_area, uniform_area * 0.97);
}

TEST(BufferSizing, OptimizedNetworkStillCorrect) {
  NocSpec spec = mesh_spec(2, 2);
  XpipesCompiler xpipes;
  xpipes.optimize_buffer_sizes(spec, 1, 4);
  auto net = xpipes.build_simulation(spec);
  net->slave(2).poke(0x10, 0xBEEF);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net->target_base(2) + 0x10;
  txn.burst_len = 1;
  net->master(1).push_transaction(txn);
  net->run_until_quiescent(10000);
  ASSERT_EQ(net->master(1).completed().size(), 1u);
  EXPECT_EQ(net->master(1).completed()[0].data.at(0), 0xBEEFu);
}

TEST(BufferSizing, PerLinkWindowsSmallerThanWorstCase) {
  // A network with one long pipelined link: only the ports on that link
  // pay for a deep retransmission window; a worst-case-uniform sizing
  // would charge every port. Compare the two switch netlists directly.
  topology::Topology topo;
  const auto a = topo.add_switch("a");
  const auto b = topo.add_switch("b");
  const auto c = topo.add_switch("c");
  topo.add_duplex(a, b, /*stages=*/6);  // long wire
  topo.add_duplex(b, c, /*stages=*/0);  // short wire
  topo.attach_initiator(a);
  topo.attach_target(c);
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kShortestPath;
  cfg.target_window = 1 << 12;
  noc::Network net(topo, cfg);

  // Switch b has one long-link port pair and one short pair.
  const auto& sized = net.switch_at(b).config();
  switchlib::SwitchConfig uniform = sized;
  uniform.input_protocols.clear();
  uniform.output_protocols.clear();  // falls back to worst-case protocol
  const auto n_sized = synth::build_switch_netlist(sized);
  const auto n_uniform = synth::build_switch_netlist(uniform);
  EXPECT_LT(n_sized.flops, n_uniform.flops);

  // And the network still works end to end across the long link.
  net.slave(0).poke(0, 0x31);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(0);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(10000);
  ASSERT_EQ(net.master(0).completed().size(), 1u);
  EXPECT_EQ(net.master(0).completed()[0].data.at(0), 0x31u);
}

TEST(BufferSizing, RejectsBadBounds) {
  NocSpec spec = mesh_spec(2, 2);
  XpipesCompiler xpipes;
  EXPECT_THROW(xpipes.optimize_buffer_sizes(spec, 0, 4), Error);
  EXPECT_THROW(xpipes.optimize_buffer_sizes(spec, 5, 4), Error);
}

}  // namespace
}  // namespace xpl::compiler
