// Per-module quiescence invariants for the activity-gated scheduler.
//
// The gated kernel skips a module whenever its is_idle() predicate
// holds, so the predicate's contract is load-bearing for correctness:
// is_idle() may return true only when the next tick would provably
// change no internal state and write no signal value differing from
// what the wires already hold. These tests pin that contract from three
// directions:
//
//  * kernel-level: active-set mechanics with toy modules (sleep, wake
//    on watched writes, same-cycle wake(), two-watcher fanout);
//  * one-step oracle: on a single-module bench, every is_idle() == true
//    claim is verified by stepping once more and requiring the kernel
//    digest to be a fixed point;
//  * module-level: each network module class must actually reach idle
//    after a drain (gating must not be vacuous), must stay awake
//    through time-driven state (SlaveCore's latency window), and the
//    network as a whole must never be fully asleep with work pending.
//
// The cycle-by-cycle proof that skipping never changes results lives in
// tests/kernel_equiv_test.cpp; this file proves the predicates say
// "idle" exactly when they are entitled to.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "src/common/rng.hpp"
#include "src/link/link.hpp"
#include "src/noc/network.hpp"
#include "src/ocp/agents.hpp"
#include "src/sim/kernel.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl {
namespace {

// ---------------------------------------------------------------------
// Kernel-level active-set mechanics.
// ---------------------------------------------------------------------

/// Emits `pulses` increasing values, with a write-on-change trailing
/// reset, then idles.
class Pulser : public sim::Module {
 public:
  Pulser(sim::Kernel& kernel, std::size_t pulses)
      : sim::Module("pulser"),
        out_(kernel.make_signal<std::uint64_t>()),
        pulses_left_(pulses) {}

  void tick(sim::Kernel&) override {
    if (pulses_left_ > 0) {
      out_.write(++value_);
      --pulses_left_;
      dirty_ = true;
    } else if (dirty_) {
      out_.write(0);
      dirty_ = false;
    }
  }

  bool is_idle() const override { return pulses_left_ == 0 && !dirty_; }

  void add_pulse() {
    ++pulses_left_;
    wake();  // external injection, exactly like push_transaction
  }

  sim::Signal<std::uint64_t>& out() { return out_; }

 private:
  sim::Signal<std::uint64_t>& out_;
  std::size_t pulses_left_;
  std::uint64_t value_ = 0;
  bool dirty_ = false;
};

/// Counts the nonzero values it observes on a watched wire.
class Counter : public sim::Module {
 public:
  Counter(sim::Signal<std::uint64_t>& in, std::string name = "counter")
      : sim::Module(std::move(name)), in_(in) {
    in_.watch(*this);
  }

  void tick(sim::Kernel&) override {
    if (in_.read() != 0) ++seen_;
  }

  /// Input-driven: a nonzero value on the wire means the next tick
  /// counts it, so the module may sleep only on a zero wire.
  bool is_idle() const override { return in_.read() == 0; }

  std::size_t seen() const { return seen_; }

 private:
  sim::Signal<std::uint64_t>& in_;
  std::size_t seen_ = 0;
};

TEST(Quiescence, ActiveSetDrainsToZeroAndDigestIsAFixedPoint) {
  sim::Kernel kernel(sim::Scheduler::kGated);
  Pulser pulser(kernel, 3);
  Counter counter(pulser.out());
  kernel.add_module(pulser);
  kernel.add_module(counter);

  kernel.run(10);
  EXPECT_EQ(counter.seen(), 3u);
  EXPECT_EQ(kernel.awake_count(), 0u) << "modules failed to leave the set";
  const std::uint64_t d0 = kernel.digest();
  kernel.run(25);
  EXPECT_EQ(kernel.digest(), d0) << "asleep kernel changed state";
  EXPECT_EQ(counter.seen(), 3u);
}

TEST(Quiescence, WatchedWriteWakesASleepingConsumer) {
  sim::Kernel kernel(sim::Scheduler::kGated);
  Pulser pulser(kernel, 0);
  Counter counter(pulser.out());
  kernel.add_module(pulser);
  kernel.add_module(counter);
  kernel.run(5);
  ASSERT_EQ(kernel.awake_count(), 0u);

  // A testbench write to the watched signal must re-arm the consumer.
  // The testbench acts as a write-on-change producer: one valid value,
  // then the trailing reset.
  pulser.out().write(42);
  kernel.step();  // commit the write; counter was woken for this step
  EXPECT_TRUE(counter.awake());
  pulser.out().write(0);
  kernel.step();  // counter reads 42; the reset commits behind it
  EXPECT_EQ(counter.seen(), 1u);
  kernel.run(5);
  EXPECT_EQ(kernel.awake_count(), 0u);
  EXPECT_EQ(counter.seen(), 1u);
}

TEST(Quiescence, ExplicitWakeArmsTheCurrentCycle) {
  // wake() must make the very next step() tick the module — matching the
  // full scheduler for externally injected work (MasterCore's
  // push_transaction is this exact pattern).
  sim::Kernel kernel(sim::Scheduler::kGated);
  Pulser pulser(kernel, 1);
  Counter counter(pulser.out());
  kernel.add_module(pulser);
  kernel.add_module(counter);
  kernel.run(6);
  ASSERT_EQ(kernel.awake_count(), 0u);

  pulser.add_pulse();
  EXPECT_TRUE(pulser.awake()) << "wake() must arm immediately";
  kernel.step();  // pulser emits on this very step, not one later
  kernel.step();  // counter consumes
  EXPECT_EQ(counter.seen(), 2u);
}

TEST(Quiescence, BothWatcherSlotsAreWoken) {
  sim::Kernel kernel(sim::Scheduler::kGated);
  Pulser pulser(kernel, 0);
  Counter first(pulser.out(), "first");
  Counter second(pulser.out(), "second");  // second watcher slot
  kernel.add_module(pulser);
  kernel.add_module(first);
  kernel.add_module(second);
  kernel.run(5);
  ASSERT_EQ(kernel.awake_count(), 0u);

  pulser.out().write(7);
  kernel.step();
  pulser.out().write(0);  // trailing reset before the value is re-read
  kernel.step();
  kernel.run(5);
  EXPECT_EQ(first.seen(), 1u);
  EXPECT_EQ(second.seen(), 1u);
  EXPECT_EQ(kernel.awake_count(), 0u);
}

// ---------------------------------------------------------------------
// One-step oracle: a claimed-idle module on a single-module bench must
// leave the kernel digest a fixed point when stepped with inert inputs.
// ---------------------------------------------------------------------

TEST(Quiescence, LinkIdleClaimsAreFixedPoints) {
  // The bench owns every signal and the link is the only module, so
  // stepping once with no testbench writes exercises exactly the
  // is_idle() contract: claimed idle => nothing may change.
  sim::Kernel kernel;  // full scheduler: every claim is *checked*, not used
  link::LinkWires up = link::LinkWires::make(kernel);
  link::LinkWires down = link::LinkWires::make(kernel);
  link::PipelinedLink dut("dut", up, down,
                          link::PipelinedLink::Config{2, 0.0, 11});
  kernel.add_module(dut);

  Rng rng(2024);
  bool fwd_dirty = false;
  bool rev_dirty = false;
  std::size_t checked = 0;
  for (int cycle = 0; cycle < 400; ++cycle) {
    bool wrote = false;
    if (rng.chance(0.25)) {
      Flit f(BitVector(32, rng.next_u64() & 0xFFFFFFFF), true, true);
      flit_seal(f, CrcKind::kCrc8);
      up.fwd->write(FlitBeat{true, std::move(f)});
      fwd_dirty = wrote = true;
    } else if (fwd_dirty) {
      up.fwd->write(FlitBeat{});
      fwd_dirty = false;
      wrote = true;
    }
    if (rng.chance(0.15)) {
      down.rev->write(AckBeat{true, true, 1});
      rev_dirty = wrote = true;
    } else if (rev_dirty) {
      down.rev->write(AckBeat{});
      rev_dirty = false;
      wrote = true;
    }
    kernel.step();
    if (wrote || !dut.is_idle()) continue;
    const std::uint64_t d0 = kernel.digest();
    kernel.step();  // no stimulus: the claim must be a fixed point
    ASSERT_EQ(kernel.digest(), d0)
        << "link claimed idle at cycle " << cycle << " but changed state";
    ASSERT_TRUE(dut.is_idle());
    ++checked;
  }
  EXPECT_GT(checked, 20u) << "stimulus never let the link go idle";
  EXPECT_GT(dut.flits_carried(), 0u) << "stimulus never exercised the link";
}

// ---------------------------------------------------------------------
// OCP endpoint predicates.
// ---------------------------------------------------------------------

struct OcpBench {
  sim::Kernel kernel;
  ocp::OcpWires wires;
  ocp::MasterCore master;
  ocp::SlaveCore slave;

  explicit OcpBench(std::uint32_t latency,
                    sim::Scheduler sched = sim::Scheduler::kFull)
      : kernel(sched),
        wires(ocp::OcpWires::make(kernel)),
        master("master", wires, master_config()),
        slave("slave", wires, slave_config(latency)) {
    kernel.add_module(master);
    kernel.add_module(slave);
  }

  static ocp::MasterCore::Config master_config() {
    ocp::MasterCore::Config c;
    c.req_credits = ocp::SlaveCore::Config{}.req_fifo_depth;
    return c;
  }

  static ocp::SlaveCore::Config slave_config(std::uint32_t latency) {
    ocp::SlaveCore::Config c;
    c.latency = latency;
    return c;
  }
};

TEST(Quiescence, MasterIdleTracksItsWorkQueue) {
  OcpBench b(/*latency=*/2);
  EXPECT_TRUE(b.master.is_idle());
  EXPECT_TRUE(b.slave.is_idle());

  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = 0x40;
  txn.burst_len = 1;
  b.master.push_transaction(txn);
  EXPECT_FALSE(b.master.is_idle()) << "queued work must keep it awake";

  b.kernel.run_until([&] { return b.master.quiescent(); }, 5000);
  b.kernel.run(20);
  EXPECT_TRUE(b.master.is_idle());
  EXPECT_TRUE(b.slave.is_idle());
  EXPECT_EQ(b.master.completed().size(), 1u);
}

TEST(Quiescence, SlaveStaysAwakeThroughItsLatencyWindow) {
  // The service-latency wait is time-driven: no wire write will re-arm
  // the slave, so is_idle() == true mid-window would hang the gated
  // kernel. Probe the middle of a long window directly.
  OcpBench b(/*latency=*/30);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = 0x8;
  txn.burst_len = 1;
  b.master.push_transaction(txn);
  b.kernel.run(15);  // request delivered; response ~15 cycles away
  EXPECT_FALSE(b.slave.is_idle())
      << "slave slept on a job awaiting its ready_cycle";
  EXPECT_TRUE(b.master.is_idle())
      << "awaiting a response is sleepable (the beat wakes it)";

  b.kernel.run_until([&] { return b.master.quiescent(); }, 5000);
  b.kernel.run(20);
  EXPECT_EQ(b.master.completed().size(), 1u);
  EXPECT_TRUE(b.slave.is_idle());
}

// ---------------------------------------------------------------------
// Whole-network predicates.
// ---------------------------------------------------------------------

noc::NetworkConfig mesh_config() {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  return cfg;
}

TEST(Quiescence, EveryModuleClassReachesIdleAfterDrain) {
  // Gating must not be vacuous for any module class: after a full drain
  // every switch, link, NI and core must report idle, the active set
  // must be empty, and the asleep network must be a digest fixed point.
  noc::NetworkConfig cfg = mesh_config();
  cfg.vcs = 2;
  noc::Network net(topology::make_mesh(3, 2, topology::NiPlan::uniform(6, 1, 1)),
                   cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.1;
  tcfg.seed = 17;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(300);
  ASSERT_GT(driver.injected(), 0u);
  net.run_until_quiescent(30000);
  ASSERT_TRUE(net.quiescent());
  net.step(20);  // let trailing drive-idle resets land and the set decay

  for (const sim::Module* m : net.kernel().modules()) {
    EXPECT_TRUE(m->is_idle()) << "still claims busy after drain: "
                              << m->name();
  }
  EXPECT_EQ(net.kernel().awake_count(), 0u);
  const std::uint64_t d0 = net.kernel().digest();
  net.step(50);
  EXPECT_EQ(net.kernel().digest(), d0);
}

TEST(Quiescence, NetworkIsNeverFullyAsleepWithWorkPending) {
  // The lost-wakeup failure mode: some module transfers responsibility
  // without waking the responsible party and the network wedges with
  // work in flight. Invariant: awake_count() == 0 implies quiescent().
  noc::NetworkConfig cfg = mesh_config();
  cfg.bit_error_rate = 2e-4;  // retransmission timers in play
  cfg.crc = CrcKind::kCrc16;
  noc::Network net(topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)),
                   cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.08;
  tcfg.burstiness = 0.4;
  tcfg.seed = 23;
  traffic::TrafficDriver driver(net, tcfg);

  auto check = [&](std::size_t cycle) {
    if (net.kernel().awake_count() == 0) {
      ASSERT_TRUE(net.quiescent())
          << "all asleep with work pending at cycle " << cycle;
    }
  };
  for (std::size_t c = 0; c < 400; ++c) {
    driver.step();
    net.step();
    check(c);
  }
  std::size_t drained = 0;
  for (; drained < 30000 && !net.quiescent(); ++drained) {
    net.step();
    check(400 + drained);
  }
  ASSERT_TRUE(net.quiescent()) << "network failed to drain";
  std::size_t completed = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    completed += net.master(i).completed().size();
  }
  EXPECT_EQ(completed, driver.injected());
}

TEST(Quiescence, OnlyTheSlaveStaysUpDuringItsServiceWindow) {
  // End-to-end view of the latency-window contract: one read through a
  // quiet network; while the slave waits out its (long) service latency
  // everything else goes to sleep around it.
  noc::NetworkConfig cfg = mesh_config();
  cfg.slave_latency = 60;
  noc::Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
                   cfg);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(3) + 0x10;
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);

  std::size_t min_busy_awake = net.kernel().module_count();
  std::size_t steps = 0;
  while (!net.quiescent() && steps < 5000) {
    net.step();
    ++steps;
    if (!net.quiescent()) {
      min_busy_awake = std::min(min_busy_awake, net.kernel().awake_count());
    }
  }
  ASSERT_TRUE(net.quiescent());
  EXPECT_EQ(net.master(0).completed().size(), 1u);
  EXPECT_GE(min_busy_awake, 1u);
  EXPECT_LE(min_busy_awake, 2u)
      << "the service window should idle everything but the slave";
}

}  // namespace
}  // namespace xpl
