// Wake-hazard regressions for the activity-gated scheduler.
//
// A wake hazard is a path that hands a module new work without going
// through a watched-signal write — the gated kernel would skip the
// module forever (or miscount) unless the path explicitly re-arms it.
// Each test here pins one such path:
//
//  1. a passive ocp::Monitor on wires it does not own must still see
//     every beat, even when it was fast asleep between transactions
//     (second watcher slot on the data wires);
//  2. push_transaction into a *fully drained* network must complete,
//     and on the same cycle as under the full scheduler (the wake()
//     call arms the current tick phase, not just the next one);
//  3. a CreditSender parked at zero credits must keep counting its
//     per-cycle credit_stalls — a counter contract that forbids
//     sleeping even though no wire changes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/noc/network.hpp"
#include "src/ocp/agents.hpp"
#include "src/ocp/monitor.hpp"
#include "src/sim/kernel.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl {
namespace {

ocp::Transaction read_txn(std::uint64_t addr) {
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = addr;
  txn.burst_len = 1;
  return txn;
}

// ---------------------------------------------------------------------
// Hazard 1: monitor observing skipped modules.
// ---------------------------------------------------------------------

struct MonitorCounts {
  std::uint64_t req_beats = 0;
  std::uint64_t resp_beats = 0;
  std::uint64_t transactions = 0;
  bool clean = false;
  bool slept_between = false;  ///< gated bench reached awake_count == 0
};

/// Runs six spaced transactions through a master/slave pair with a
/// monitor snooping the socket. The idle gaps put the whole bench to
/// sleep between transactions under the gated scheduler, so every beat
/// the monitor sees after the first gap arrives via its wire watches.
MonitorCounts run_monitored(sim::Scheduler scheduler) {
  sim::Kernel kernel(scheduler);
  const ocp::OcpWires wires = ocp::OcpWires::make(kernel);
  ocp::MasterCore::Config mc;
  mc.req_credits = ocp::SlaveCore::Config{}.req_fifo_depth;
  ocp::MasterCore master("master", wires, mc);
  ocp::SlaveCore slave("slave", wires, {});
  ocp::Monitor monitor("monitor", wires);
  kernel.add_module(master);
  kernel.add_module(slave);
  kernel.add_module(monitor);

  MonitorCounts out;
  for (int k = 0; k < 6; ++k) {
    ocp::Transaction txn;
    txn.cmd = k % 2 == 0 ? ocp::Cmd::kRead : ocp::Cmd::kWrite;
    txn.burst_len = 1 + static_cast<std::uint32_t>(k % 3);
    txn.addr = 0x80 * k;
    if (txn.cmd != ocp::Cmd::kRead) txn.data.assign(txn.burst_len, 0xA0 + k);
    master.push_transaction(txn);
    kernel.run_until([&] { return master.quiescent(); }, 5000);
    kernel.run(20);  // idle gap: everything should fall asleep
    if (kernel.awake_count() == 0) out.slept_between = true;
  }
  out.req_beats = monitor.req_beats();
  out.resp_beats = monitor.resp_beats();
  out.transactions = monitor.transactions();
  out.clean = monitor.clean();
  return out;
}

TEST(WakeHazard, MonitorOnSleepingBenchSeesEveryBeat) {
  const MonitorCounts full = run_monitored(sim::Scheduler::kFull);
  const MonitorCounts gated = run_monitored(sim::Scheduler::kGated);

  // The scenario is only a regression test if the gated bench really
  // slept between transactions — otherwise the watches were never the
  // monitor's only wake source.
  EXPECT_TRUE(gated.slept_between);
  EXPECT_TRUE(full.clean);
  EXPECT_TRUE(gated.clean);
  EXPECT_EQ(gated.transactions, 6u);
  EXPECT_EQ(gated.req_beats, full.req_beats);
  EXPECT_EQ(gated.resp_beats, full.resp_beats);
  EXPECT_EQ(gated.transactions, full.transactions);
}

// ---------------------------------------------------------------------
// Hazard 2: push into a drained network.
// ---------------------------------------------------------------------

TEST(WakeHazard, PushIntoDrainedNetworkCompletesInLockstep) {
  // Drain both twins to a dead stop, then inject the same transaction
  // into each. The gated twin must serve it on the same cycles as the
  // full twin — push_transaction's wake() arms the *current* step, so
  // an injection between steps is never served a cycle late.
  auto build = [](sim::Scheduler scheduler) {
    noc::NetworkConfig cfg;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    cfg.scheduler = scheduler;
    return cfg;
  };
  noc::Network full(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
                    build(sim::Scheduler::kFull));
  noc::Network gated(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
                     build(sim::Scheduler::kGated));

  full.step(40);
  gated.step(40);
  ASSERT_EQ(gated.kernel().awake_count(), 0u)
      << "reset-state network failed to drain to a dead stop";

  full.master(0).push_transaction(read_txn(full.target_base(2) + 0x20));
  gated.master(0).push_transaction(read_txn(gated.target_base(2) + 0x20));
  for (std::size_t c = 0; c < 3000; ++c) {
    if (full.quiescent() && gated.quiescent()) break;
    full.step();
    gated.step();
    ASSERT_EQ(full.kernel().digest(), gated.kernel().digest())
        << "post-push divergence at cycle " << c;
  }
  ASSERT_TRUE(full.quiescent());
  ASSERT_TRUE(gated.quiescent());
  ASSERT_EQ(full.master(0).completed().size(), 1u);
  ASSERT_EQ(gated.master(0).completed().size(), 1u);
}

// ---------------------------------------------------------------------
// Hazard 3: credit sender at zero credits.
// ---------------------------------------------------------------------

TEST(WakeHazard, StarvedCreditSenderKeepsCountingStalls) {
  // Saturate a small credit-flow mesh so senders park at zero credits.
  // gate_idle() must refuse to sleep there: each starved cycle owes a
  // credit_stalls_ increment, and a sleeping sender would undercount
  // (the differential digests would still match — only the counters
  // drift — which is why this needs its own regression).
  auto run = [](sim::Scheduler scheduler) {
    noc::NetworkConfig cfg;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    cfg.flow = link::FlowControl::kCredit;
    cfg.output_fifo_depth = 2;
    cfg.scheduler = scheduler;
    noc::Network net(
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
    traffic::TrafficConfig tcfg;
    tcfg.injection_rate = 0.5;
    tcfg.burstiness = 0.6;
    tcfg.seed = 31;
    traffic::TrafficDriver driver(net, tcfg);
    driver.run(400);
    net.run_until_quiescent(60000);
    EXPECT_TRUE(net.quiescent());
    return net.total_credit_stalls();
  };
  const std::uint64_t full = run(sim::Scheduler::kFull);
  const std::uint64_t gated = run(sim::Scheduler::kGated);
  EXPECT_GT(full, 0u) << "scenario never starved a sender (vacuous test)";
  EXPECT_EQ(gated, full);
}

}  // namespace
}  // namespace xpl
