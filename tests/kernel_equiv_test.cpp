// Differential kernel-equivalence suite (PR 7's headline proof,
// extended to the time-leap scheduler in PR 10).
//
// The gated and time-leap schedulers must be indistinguishable from the
// full scheduler on every observable. These tests drive the
// differential harness (tests/support/differential.hpp) over randomized
// topologies × traffic × flow control × lane counts — per-cycle and
// chunked for the time-leap twin, partitioned across {2,4} partitions ×
// {2,4} threads — and additionally pin campaign CSV/JSON exports and
// recorded-trace bytes across the schedulers. Failures shrink to a
// minimal reproducing scenario and print the first divergent cycle plus
// the modules whose state differs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/common/rng.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/trace.hpp"
#include "tests/support/differential.hpp"

namespace xpl {
namespace {

using testsupport::DiffScenario;
using testsupport::run_differential;
using testsupport::run_differential_shrunk;
using testsupport::run_differential_timeleap;
using testsupport::run_differential_timeleap_partitioned;
using testsupport::run_differential_timeleap_shrunk;

/// Draws one random-but-valid scenario. Every combination is kept
/// deadlock-free by construction: minimal routing on rings/tori only
/// with the dateline lanes (vcs >= 2) the checker demands.
DiffScenario random_scenario(std::uint64_t seed) {
  Rng rng(seed);
  DiffScenario s;
  switch (rng.next_below(6)) {
    case 0:
      s.topology = "mesh";
      s.width = 2 + rng.next_below(2);   // 2..3
      s.height = 2 + rng.next_below(2);  // 2..3
      s.routing = topology::RoutingAlgorithm::kXY;
      s.vcs = 1 + rng.next_below(2);
      break;
    case 1:
      s.topology = "mesh";
      s.width = 2 + rng.next_below(2);
      s.height = 2;
      s.routing = topology::RoutingAlgorithm::kUpDown;
      s.vcs = 1 + rng.next_below(2);
      break;
    case 2:
      s.topology = "ring";
      s.width = 4 + rng.next_below(3);  // 4..6
      s.routing = topology::RoutingAlgorithm::kShortestPath;
      s.vcs = 2 + 2 * rng.next_below(2);  // 2 or 4 (dateline)
      break;
    case 3:
      s.topology = "torus";
      s.width = 3;
      s.height = 3;
      s.routing = topology::RoutingAlgorithm::kShortestPath;
      s.vcs = 2;
      break;
    case 4:
      s.topology = "star";
      s.width = 3 + rng.next_below(4);  // 3..6 leaves
      s.routing = topology::RoutingAlgorithm::kUpDown;
      s.vcs = 1 + rng.next_below(2);
      break;
    default:
      s.topology = "spidergon";
      s.width = 6;
      s.routing = topology::RoutingAlgorithm::kUpDown;
      s.vcs = 1 + rng.next_below(2);
      break;
  }
  if (rng.next_below(3) == 0) {
    s.flow = link::FlowControl::kCredit;
    s.bit_error_rate = 0.0;
  } else {
    s.flow = link::FlowControl::kAckNack;
    s.bit_error_rate = rng.next_below(2) == 0 ? 0.0 : 2e-4;
  }
  const double rates[] = {0.01, 0.05, 0.1, 0.2, 0.3};
  s.injection_rate = rates[rng.next_below(5)];
  const double bursts[] = {0.0, 0.3, 0.6};
  s.burstiness = bursts[rng.next_below(3)];
  s.cycles = 300 + rng.next_below(301);  // 300..600
  s.net_seed = rng.next_u64();
  s.traffic_seed = rng.next_u64();
  return s;
}

/// The randomized sweep: >= 200 seeds by default. XPL_EQUIV_TRIALS
/// overrides the count (the CI kernel-equiv job raises it; local
/// debugging can lower it).
TEST(KernelEquiv, RandomizedScenariosAreBitExact) {
  std::size_t trials = 200;
  if (const char* env = std::getenv("XPL_EQUIV_TRIALS")) {
    trials = static_cast<std::size_t>(std::atoll(env));
  }
  for (std::size_t t = 0; t < trials; ++t) {
    const DiffScenario scenario = random_scenario(0xD1FF0000 + t);
    const auto result = run_differential_shrunk(scenario);
    ASSERT_TRUE(result.ok) << "trial " << t << ": " << result.detail;
  }
}

/// The same randomized sweep against the time-leap scheduler: >= 200
/// fresh seeds, each proven per-cycle (leaps digest-checked inside the
/// leapt region) and chunked (injector + multi-cycle leaps).
TEST(KernelEquiv, TimeLeapRandomizedScenariosAreBitExact) {
  std::size_t trials = 200;
  if (const char* env = std::getenv("XPL_EQUIV_TRIALS")) {
    trials = static_cast<std::size_t>(std::atoll(env));
  }
  for (std::size_t t = 0; t < trials; ++t) {
    const DiffScenario scenario = random_scenario(0x7EA90000 + t);
    const auto result = run_differential_timeleap_shrunk(scenario);
    ASSERT_TRUE(result.ok) << "trial " << t << ": " << result.detail;
  }
}

/// Partitioned time-leap twins across the full {2,4} partitions ×
/// {2,4} threads matrix. Low rates stretch idle gaps across many epoch
/// barriers (leap truncation); the moderate-rate credit scenario mixes
/// leaping with real backpressure across the cuts.
TEST(KernelEquiv, TimeLeapPartitionedMatrixIsBitExact) {
  DiffScenario scenarios[3];
  scenarios[0].topology = "mesh";  // near-silent: leaps dominate
  scenarios[0].width = 4;
  scenarios[0].height = 4;
  scenarios[0].injection_rate = 0.002;
  scenarios[0].cycles = 600;
  scenarios[1].topology = "torus";  // wrap cuts + dateline lanes
  scenarios[1].width = 4;
  scenarios[1].height = 4;
  scenarios[1].vcs = 2;
  scenarios[1].routing = topology::RoutingAlgorithm::kShortestPath;
  scenarios[1].injection_rate = 0.01;
  scenarios[1].cycles = 400;
  scenarios[2].topology = "mesh";  // credit stalls across the cut
  scenarios[2].width = 4;
  scenarios[2].height = 3;
  scenarios[2].flow = link::FlowControl::kCredit;
  scenarios[2].injection_rate = 0.05;
  scenarios[2].burstiness = 0.5;
  scenarios[2].cycles = 400;
  const std::size_t partition_counts[] = {2, 4};
  const std::size_t thread_counts[] = {2, 4};
  for (const DiffScenario& scenario : scenarios) {
    for (const std::size_t p : partition_counts) {
      for (const std::size_t t : thread_counts) {
        const auto result =
            run_differential_timeleap_partitioned(scenario, p, t);
        ASSERT_TRUE(result.ok)
            << "p=" << p << " t=" << t << ": " << result.detail;
      }
    }
  }
}

/// Deterministic pins for the corners the random draw can undersample.
TEST(KernelEquiv, CornerScenariosAreBitExact) {
  DiffScenario corners[6];
  corners[0].topology = "mesh";  // the golden campaign's smallest point
  corners[1] = corners[0];
  corners[1].injection_rate = 0.3;  // saturation
  corners[1].cycles = 600;
  corners[2].topology = "ring";
  corners[2].width = 6;
  corners[2].routing = topology::RoutingAlgorithm::kShortestPath;
  corners[2].vcs = 2;
  corners[3].topology = "mesh";
  corners[3].flow = link::FlowControl::kCredit;
  corners[3].injection_rate = 0.25;  // exercises credit_stalls
  corners[4].topology = "mesh";
  corners[4].bit_error_rate = 1e-3;  // heavy corruption + retransmit
  corners[4].cycles = 500;
  corners[5].topology = "mesh";
  corners[5].injection_rate = 0.002;  // near-silent: gating dominates
  corners[5].cycles = 600;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto result = run_differential(corners[i]);
    ASSERT_TRUE(result.ok) << "corner " << i << ": " << result.detail;
    const auto leap_result = run_differential_timeleap(corners[i]);
    ASSERT_TRUE(leap_result.ok)
        << "corner " << i << " (time-leap): " << leap_result.detail;
  }
}

/// Campaign-level equality: the same sweep spec with `scheduler full`
/// vs `scheduler gated` must export byte-identical CSV and JSON.
TEST(KernelEquiv, CampaignExportsAreSchedulerInvariant) {
  const char* kSpec =
      "sweep equiv\n"
      "seed 11\n"
      "cycles 800\n"
      "topology mesh ring\n"
      "width 3\n"
      "height 2\n"
      "flow ack_nack credit\n"
      "injection_rate 0.02 0.15\n";
  sweep::SweepSpec full_spec = sweep::parse_sweep(kSpec);
  full_spec.scheduler = "full";
  sweep::SweepSpec gated_spec = sweep::parse_sweep(kSpec);
  ASSERT_EQ(gated_spec.scheduler, "gated");  // the default
  const auto full_table = sweep::SweepRunner(1).run(full_spec);
  const auto gated_table = sweep::SweepRunner(1).run(gated_spec);
  EXPECT_EQ(full_table.to_csv(), gated_table.to_csv());
  EXPECT_EQ(full_table.to_json(), gated_table.to_json());
}

/// Recorded traces must be byte-identical across schedulers: the
/// recorder taps master push_transaction, whose content and timing are
/// driver-determined, and completion draining must not differ.
TEST(KernelEquiv, RecordedTraceBytesAreSchedulerInvariant) {
  auto record = [](sim::Scheduler scheduler) {
    noc::NetworkConfig cfg;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    cfg.scheduler = scheduler;
    noc::Network net(
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
    traffic::TrafficConfig tcfg;
    tcfg.injection_rate = 0.08;
    tcfg.burstiness = 0.4;
    tcfg.seed = 99;
    workload::TraceRecorder recorder(net, "equiv");
    traffic::TrafficDriver driver(net, tcfg);
    driver.run(600);
    net.run_until_quiescent(20000);
    return workload::write_trace(recorder.trace());
  };
  const std::string full = record(sim::Scheduler::kFull);
  const std::string gated = record(sim::Scheduler::kGated);
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(full, gated);
}

/// Sanity that the optimization is real: at low load the gated kernel
/// must actually skip most modules most cycles (otherwise these
/// equivalence proofs are vacuous).
TEST(KernelEquiv, GatedKernelActuallySkipsIdleModules) {
  DiffScenario s;
  s.injection_rate = 0.002;
  s.cycles = 400;
  noc::Network net(s.build_topology(),
                   s.net_config(sim::Scheduler::kGated));
  traffic::TrafficDriver driver(net, s.traffic_config());
  std::uint64_t awake_sum = 0;
  std::uint64_t min_awake = net.kernel().module_count();
  for (std::size_t c = 0; c < s.cycles; ++c) {
    driver.step();
    net.step();
    awake_sum += net.kernel().awake_count();
    min_awake = std::min<std::uint64_t>(min_awake,
                                        net.kernel().awake_count());
  }
  const std::uint64_t modules = net.kernel().module_count();
  // Some cycle must have put the majority of the network to sleep.
  EXPECT_LT(min_awake, modules / 2)
      << "gating never idled half the network at near-zero load";
  EXPECT_LT(awake_sum, s.cycles * modules)
      << "gating skipped nothing over the whole run";
}

}  // namespace
}  // namespace xpl
