// Edge cases across the stack: id wraparound, forced response reordering,
// per-hop latency regularity, alternate arbiter/CRC configurations.
#include <gtest/gtest.h>

#include "src/noc/network.hpp"
#include "src/ocp/monitor.hpp"
#include "src/topology/generators.hpp"

namespace xpl {
namespace {

noc::NetworkConfig base_config() {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  return cfg;
}

TEST(EdgeCases, TransactionIdWraparound) {
  // txn ids are a small modulo counter (txn_bits). Issuing far more
  // transactions than the id space exercises wraparound and the
  // no-collision gating.
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
      base_config());
  const std::size_t total = 100;  // >> 2^txn_bits
  for (std::size_t k = 0; k < total; ++k) {
    net.slave(k % 4).poke(8 * k, 0x4000 + k);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(k % 4) + 8 * k;
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
  }
  net.run_until_quiescent(200000);
  const auto& completed = net.master(0).completed();
  ASSERT_EQ(completed.size(), total);
  for (std::size_t k = 0; k < total; ++k) {
    ASSERT_EQ(completed[k].data.size(), 1u) << "txn " << k;
    EXPECT_EQ(completed[k].data[0], 0x4000 + k) << "txn " << k;
  }
}

TEST(EdgeCases, ResponsesReorderedToIssueOrder) {
  // Force out-of-order network completion: first read goes to a slow
  // faraway target, second to the co-located one. Same OCP thread, so the
  // NI's reorder stage must deliver them in issue order.
  noc::NetworkConfig cfg = base_config();
  cfg.slave_latency = 30;  // uniform but distance still dominates order
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  net.slave(3).poke(0, 0xFA);  // far: 2 grid hops from master 0
  net.slave(0).poke(0, 0xEE);  // near: same switch as master 0

  ocp::Transaction far;
  far.cmd = ocp::Cmd::kRead;
  far.addr = net.target_base(3);
  far.burst_len = 1;
  net.master(0).push_transaction(far);
  ocp::Transaction near;
  near.cmd = ocp::Cmd::kRead;
  near.addr = net.target_base(0);
  near.burst_len = 1;
  net.master(0).push_transaction(near);

  net.run_until_quiescent(10000);
  const auto& completed = net.master(0).completed();
  ASSERT_EQ(completed.size(), 2u);
  // Issue order preserved even though the near response returned first.
  EXPECT_EQ(completed[0].data.at(0), 0xFAu);
  EXPECT_EQ(completed[1].data.at(0), 0xEEu);
  // Both completed at the same cycle is fine; the far one cannot
  // complete later than the near one's delivery.
  EXPECT_LE(completed[0].complete_cycle, completed[1].complete_cycle);
}

TEST(EdgeCases, PerHopLatencyDeltaIsConstant) {
  // Zero-load latency must grow by exactly the same amount per extra
  // switch on the path (2 switch stages + 1 link register, both ways).
  noc::Network net(
      topology::make_mesh(4, 1, topology::NiPlan::uniform(4, 1, 1)),
      base_config());
  std::vector<std::uint64_t> latency;
  for (std::size_t t = 0; t < 4; ++t) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(t);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(10000);
    const auto& result = net.master(0).completed().back();
    latency.push_back(result.complete_cycle - result.issue_cycle);
  }
  const std::uint64_t delta = latency[1] - latency[0];
  EXPECT_GT(delta, 0u);
  EXPECT_EQ(latency[2] - latency[1], delta);
  EXPECT_EQ(latency[3] - latency[2], delta);
}

TEST(EdgeCases, FixedPriorityArbiterEndToEnd) {
  noc::NetworkConfig cfg = base_config();
  cfg.arbiter = switchlib::ArbiterKind::kFixedPriority;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 5; ++k) {
      ocp::Transaction txn;
      txn.cmd = ocp::Cmd::kWriteNp;
      txn.addr = net.target_base((i + 1) % 4) + 8 * k;
      txn.burst_len = 1;
      txn.data = {static_cast<std::uint64_t>(10 * i + k)};
      net.master(i).push_transaction(txn);
    }
  }
  net.run_until_quiescent(100000);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(net.master(i).completed().size(), 5u) << "master " << i;
  }
}

TEST(EdgeCases, ParityCheckingEndToEnd) {
  noc::NetworkConfig cfg = base_config();
  cfg.crc = CrcKind::kParity;
  cfg.bit_error_rate = 5e-5;  // sparse single-bit flips: parity catches
  cfg.seed = 21;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1),
                          /*link_stages=*/1),
      cfg);
  for (int k = 0; k < 30; ++k) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kWriteNp;
    txn.addr = net.target_base((k + 1) % 4) + 8 * k;
    txn.burst_len = 2;
    txn.data = {1ull * k, 2ull * k};
    net.master(k % 4).push_transaction(txn);
  }
  net.run_until_quiescent(200000);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    completed += net.master(i).completed().size();
  }
  EXPECT_EQ(completed, 30u);
}

TEST(EdgeCases, NoCrcReliableLinksStillFlowControl) {
  noc::NetworkConfig cfg = base_config();
  cfg.crc = CrcKind::kNone;  // reliable links: nACK is pure flow control
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  for (int k = 0; k < 20; ++k) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(0);  // hotspot: forces backpressure
    txn.burst_len = 8;
    net.master(k % 4).push_transaction(txn);
  }
  net.run_until_quiescent(200000);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    completed += net.master(i).completed().size();
  }
  EXPECT_EQ(completed, 20u);
}

TEST(EdgeCases, MaxBurstBoundary) {
  noc::NetworkConfig cfg = base_config();
  cfg.max_burst = 16;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  ocp::Transaction wr;
  wr.cmd = ocp::Cmd::kWrite;
  wr.addr = net.target_base(2);
  wr.burst_len = 16;  // exactly the maximum
  for (std::uint64_t b = 0; b < 16; ++b) wr.data.push_back(b * b);
  net.master(1).push_transaction(wr);
  ocp::Transaction rd;
  rd.cmd = ocp::Cmd::kRead;
  rd.addr = net.target_base(2);
  rd.burst_len = 16;
  net.master(1).push_transaction(rd);
  net.run_until_quiescent(50000);
  ASSERT_EQ(net.master(1).completed().size(), 2u);
  const auto& result = net.master(1).completed()[1];
  ASSERT_EQ(result.data.size(), 16u);
  for (std::uint64_t b = 0; b < 16; ++b) EXPECT_EQ(result.data[b], b * b);
}

TEST(EdgeCases, SingleSwitchNetwork) {
  // Degenerate topology: one switch, everything local.
  topology::Topology topo;
  const auto sw = topo.add_switch("only");
  topo.attach_initiator(sw);
  topo.attach_initiator(sw);
  topo.attach_target(sw);
  noc::NetworkConfig cfg = base_config();
  cfg.routing = topology::RoutingAlgorithm::kShortestPath;
  noc::Network net(std::move(topo), cfg);
  net.slave(0).poke(0, 0x99);
  for (std::size_t i = 0; i < 2; ++i) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(0);
    txn.burst_len = 1;
    net.master(i).push_transaction(txn);
  }
  net.run_until_quiescent(5000);
  EXPECT_EQ(net.master(0).completed().at(0).data.at(0), 0x99u);
  EXPECT_EQ(net.master(1).completed().at(0).data.at(0), 0x99u);
}

TEST(EdgeCases, WideFlitNarrowHeaderPacksSingleFlit) {
  // 128-bit flits: header and each beat fit one flit; reads are 1-flit
  // request packets + (1+burst)-flit responses.
  noc::NetworkConfig cfg = base_config();
  cfg.flit_width = 128;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  EXPECT_EQ(net.format().header_flits(), 1u);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(3);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(10000);
  // Request: 1 flit x 3 switch-hops worth of links; response: 2 flits.
  EXPECT_EQ(net.master(0).completed().size(), 1u);
}

}  // namespace
}  // namespace xpl
