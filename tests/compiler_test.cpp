// xpipesCompiler: simulation view, synthesis report, SystemC emission.
#include "src/compiler/compiler.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "src/topology/generators.hpp"

namespace xpl::compiler {
namespace {

NocSpec mesh_spec(std::size_t w = 2, std::size_t h = 2) {
  NocSpec spec;
  spec.name = "testnoc";
  spec.topo = topology::make_mesh(
      w, h, topology::NiPlan::uniform(w * h, 1, 1));
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  return spec;
}

TEST(Compiler, SimulationViewRuns) {
  XpipesCompiler xpipes;
  auto net = xpipes.build_simulation(mesh_spec());
  net->slave(0).poke(0, 0x11);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net->target_base(0);
  txn.burst_len = 1;
  net->master(3).push_transaction(txn);
  net->run_until_quiescent(5000);
  ASSERT_EQ(net->master(3).completed().size(), 1u);
  EXPECT_EQ(net->master(3).completed()[0].data.at(0), 0x11u);
}

TEST(Compiler, ReportCoversEveryInstance) {
  XpipesCompiler xpipes;
  const auto report = xpipes.estimate(mesh_spec(), 800.0);
  // 4 switches + 4 initiator NIs + 4 target NIs.
  EXPECT_EQ(report.instances.size(), 12u);
  EXPECT_GT(report.total_area_mm2, 0.0);
  EXPECT_GT(report.total_power_mw, 0.0);
  EXPECT_GT(report.min_fmax_mhz, 0.0);
  double sum = 0;
  for (const auto& inst : report.instances) {
    EXPECT_FALSE(inst.name.empty());
    EXPECT_TRUE(inst.estimate.feasible) << inst.name;
    sum += inst.estimate.area_mm2;
  }
  EXPECT_NEAR(sum, report.total_area_mm2, 1e-9);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(Compiler, ReportSeparatesComponentKinds) {
  XpipesCompiler xpipes;
  const auto report = xpipes.estimate(mesh_spec(), 800.0);
  std::size_t switches = 0;
  std::size_t inis = 0;
  std::size_t tgts = 0;
  for (const auto& inst : report.instances) {
    if (inst.kind.find("switch") != std::string::npos) ++switches;
    if (inst.kind == "initiator NI") ++inis;
    if (inst.kind == "target NI") ++tgts;
  }
  EXPECT_EQ(switches, 4u);
  EXPECT_EQ(inis, 4u);
  EXPECT_EQ(tgts, 4u);
}

TEST(Compiler, MeshCaseStudyMatchesPaperInventory) {
  NocSpec spec;
  spec.name = "case_study";
  spec.topo = topology::make_paper_case_study();
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  XpipesCompiler xpipes;
  const auto report = xpipes.estimate(spec, 800.0);
  EXPECT_EQ(report.instances.size(), 12u + 8u + 11u);
  // The paper: a 3x4 xpipes mesh for 8 processors and 11 slaves occupies
  // ~2.6 mm2. Hold the model to the right neighbourhood.
  EXPECT_GT(report.total_area_mm2, 1.5);
  EXPECT_LT(report.total_area_mm2, 4.0);
}

TEST(Emitter, OneClassPerDistinctConfig) {
  XpipesCompiler xpipes;
  const auto files = xpipes.emit_systemc(mesh_spec());
  // 2x2 mesh with 1+1 NIs per switch: all switches are 4x4 (2 links + 2
  // NIs), all initiator NIs identical, all target NIs identical:
  // 3 component classes + routes + top.
  EXPECT_EQ(files.size(), 5u);
  EXPECT_TRUE(files.count("xpipes_switch_4x4_w32.h"));
  EXPECT_TRUE(files.count("xpipes_ni_initiator_w32.h"));
  EXPECT_TRUE(files.count("xpipes_ni_target_w32.h"));
  EXPECT_TRUE(files.count("xpipes_routes.h"));
  EXPECT_TRUE(files.count("testnoc_top.h"));
}

TEST(Emitter, HeterogeneousMeshEmitsAllShapes) {
  NocSpec spec;
  spec.name = "hetero";
  spec.topo = topology::make_paper_case_study();
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  XpipesCompiler xpipes;
  const auto files = xpipes.emit_systemc(spec);
  // The 3x4 case study produces several switch shapes (4x4, 5x5, 6x6...
  // depending on row), at least two distinct ones.
  std::size_t switch_classes = 0;
  for (const auto& [name, content] : files) {
    if (name.find("xpipes_switch_") == 0) ++switch_classes;
  }
  EXPECT_GE(switch_classes, 2u);
}

TEST(Emitter, SwitchHeaderContainsStructure) {
  XpipesCompiler xpipes;
  const auto files = xpipes.emit_systemc(mesh_spec());
  const auto& sw = files.at("xpipes_switch_4x4_w32.h");
  EXPECT_NE(sw.find("SC_MODULE(xpipes_switch_4x4_w32)"), std::string::npos);
  EXPECT_NE(sw.find("sc_in<bool> clock;"), std::string::npos);
  EXPECT_NE(sw.find("flit_in0"), std::string::npos);
  EXPECT_NE(sw.find("flit_in3"), std::string::npos);
  EXPECT_NE(sw.find("flit_out3"), std::string::npos);
  EXPECT_NE(sw.find("retx_buf"), std::string::npos);
  EXPECT_NE(sw.find("output_queue"), std::string::npos);
  EXPECT_NE(sw.find("SC_METHOD(arb_process)"), std::string::npos);
}

TEST(Emitter, RoutesFileCarriesComputedRoutes) {
  XpipesCompiler xpipes;
  const auto spec = mesh_spec();
  const auto files = xpipes.emit_systemc(spec);
  const auto& routes = files.at("xpipes_routes.h");
  auto net = xpipes.build_simulation(spec);
  // Every pair in the routing tables appears as a named array.
  for (const auto& [pair, route] : net->routes().routes) {
    const std::string name = "xpipes_route_" + std::to_string(pair.first) +
                             "_" + std::to_string(pair.second);
    EXPECT_NE(routes.find(name), std::string::npos) << name;
  }
}

TEST(Emitter, TopInstantiatesEverything) {
  XpipesCompiler xpipes;
  const auto spec = mesh_spec();
  const auto files = xpipes.emit_systemc(spec);
  const auto& top = files.at("testnoc_top.h");
  auto net = xpipes.build_simulation(spec);
  for (std::size_t s = 0; s < net->num_switches(); ++s) {
    EXPECT_NE(top.find(net->switch_at(s).name()), std::string::npos);
  }
  for (std::size_t i = 0; i < net->num_initiators(); ++i) {
    EXPECT_NE(top.find(net->initiator_ni(i).name()), std::string::npos);
  }
  // Every link signal bound.
  for (std::uint32_t l = 0; l < spec.topo.num_links(); ++l) {
    EXPECT_NE(top.find("link" + std::to_string(l) + "_flit"),
              std::string::npos);
  }
}

TEST(Emitter, Deterministic) {
  XpipesCompiler xpipes;
  const auto a = xpipes.emit_systemc(mesh_spec());
  const auto b = xpipes.emit_systemc(mesh_spec());
  EXPECT_EQ(a, b);
}

TEST(Emitter, WritesFilesToDisk) {
  XpipesCompiler xpipes;
  const std::string dir = ::testing::TempDir() + "/xpl_emit";
  xpipes.write_systemc(mesh_spec(), dir);
  std::ifstream top(dir + "/testnoc_top.h");
  EXPECT_TRUE(top.good());
}

}  // namespace
}  // namespace xpl::compiler
