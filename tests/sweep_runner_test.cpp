// Campaign execution: jobs=1 vs jobs=8 bit-identical results, failure
// recording, the work-stealing loop's coverage/exception contracts, and
// the parse -> run -> export -> reparse round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/common/error.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {
namespace {

/// Small but real campaign: 8 simulated points, two topologies.
SweepSpec small_campaign() {
  SweepSpec spec;
  spec.name = "unit";
  spec.seed = 3;
  spec.sim_cycles = 300;
  spec.drain_cycles = 5000;
  spec.topologies = {"mesh", "ring"};
  spec.widths = {2, 4};
  spec.heights = {2};
  spec.flit_widths = {32};
  spec.fifo_depths = {4};
  spec.patterns = {"uniform"};
  spec.injection_rates = {0.02, 0.08};
  return spec;
}

TEST(SweepRunner, ResultsBitIdenticalAcrossJobCounts) {
  const SweepSpec spec = small_campaign();
  const ResultTable serial = SweepRunner(1).run(spec);
  const ResultTable parallel = SweepRunner(8).run(spec);

  ASSERT_EQ(serial.size(), spec.num_points());
  ASSERT_EQ(parallel.size(), serial.size());
  EXPECT_GT(serial.num_ok(), 0u);

  // The whole contract at once: identical exports, byte for byte.
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  // And field-level, so a formatting bug can't mask a sim divergence.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.row(i).ok, parallel.row(i).ok) << i;
    EXPECT_EQ(serial.row(i).transactions, parallel.row(i).transactions)
        << i;
    EXPECT_DOUBLE_EQ(serial.row(i).avg_latency_cycles,
                     parallel.row(i).avg_latency_cycles)
        << i;
    EXPECT_EQ(serial.row(i).link_flits, parallel.row(i).link_flits) << i;
  }
}

TEST(SweepRunner, SimulationActuallyMovedTraffic) {
  SweepSpec spec = small_campaign();
  spec.injection_rates = {0.05};
  spec.topologies = {"mesh"};
  spec.widths = {2};
  const ResultTable table = SweepRunner(2).run(spec);
  ASSERT_EQ(table.size(), 1u);
  const SweepResult& r = table.row(0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.transactions, 0u);
  EXPECT_GT(r.avg_latency_cycles, 0.0);
  EXPECT_GT(r.link_flits, 0u);
  EXPECT_GT(r.area_mm2, 0.0);
  EXPECT_GT(r.power_mw, 0.0);
}

TEST(SweepRunner, InfeasiblePointRecordedNotFatal) {
  SweepSpec spec = small_campaign();
  // 8x8 mesh at 16-bit flits: the route field cannot fit the head flit.
  spec.topologies = {"mesh"};
  spec.widths = {8};
  spec.heights = {8};
  spec.flit_widths = {16};
  spec.injection_rates = {0.02};
  spec.sim_cycles = 10;
  spec.drain_cycles = 10;
  const ResultTable table = SweepRunner(2).run(spec);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.row(0).ok);
  EXPECT_FALSE(table.row(0).error.empty());
  EXPECT_EQ(table.num_ok(), 0u);
}

TEST(SweepRunner, RunIndexedCoversEveryIndexOnce) {
  const std::size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  SweepRunner(8).run_indexed(
      n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(SweepRunner, RunIndexedPropagatesException) {
  EXPECT_THROW(SweepRunner(4).run_indexed(10,
                                          [](std::size_t i) {
                                            if (i == 7) throw Error("boom");
                                          }),
               Error);
}

TEST(SweepRunner, ParseRunExportReparseRoundTrip) {
  const char* text =
      "sweep rt\n"
      "seed 11\n"
      "cycles 200\n"
      "drain 3000\n"
      "topology mesh\n"
      "width 2\n"
      "height 2\n"
      "flit_width 32 64\n"
      "injection_rate 0.03\n";
  const SweepSpec spec = parse_sweep(text);
  const ResultTable first = SweepRunner(2).run(spec);

  // Round-trip the spec through its canonical form and rerun: the
  // exports must match byte for byte.
  const SweepSpec reparsed = parse_sweep(write_sweep(spec));
  const ResultTable second = SweepRunner(1).run(reparsed);
  EXPECT_EQ(first.to_csv(), second.to_csv());
  EXPECT_EQ(first.to_json(), second.to_json());
}

}  // namespace
}  // namespace xpl::sweep
