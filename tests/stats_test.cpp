// Extended statistics: warmup windows, histograms, link loads, CSV
// export.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::traffic {
namespace {

std::unique_ptr<noc::Network> loaded_net(double rate = 0.06) {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  auto net = std::make_unique<noc::Network>(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  TrafficConfig tcfg;
  tcfg.injection_rate = rate;
  tcfg.read_fraction = 1.0;
  tcfg.seed = 8;
  TrafficDriver driver(*net, tcfg);
  driver.run(3000);
  net->run_until_quiescent(50000);
  return net;
}

TEST(Warmup, WindowExcludesPreWarmupTransactions) {
  auto net = loaded_net();
  const auto whole = collect_run(*net, 3000);
  const auto windowed = collect_run(*net, 3000, 1500);

  // Traffic was injected from cycle 0, so a 1500-cycle warmup must drop
  // transactions — and every survivor was issued inside the window.
  EXPECT_GT(whole.transactions, windowed.transactions);
  EXPECT_GT(windowed.transactions, 0u);
  EXPECT_EQ(windowed.warmup, 1500u);
  std::size_t in_window = 0;
  for (std::size_t i = 0; i < net->num_initiators(); ++i) {
    for (const auto& r : net->master(i).completed()) {
      if (r.issue_cycle >= 1500) ++in_window;
    }
  }
  EXPECT_EQ(windowed.transactions, in_window);

  // Latency distribution likewise shrinks to the window's samples.
  EXPECT_EQ(windowed.latency.count, collect_latency(*net, 1500).count);
  EXPECT_LT(windowed.latency.count, whole.latency.count);

  // Throughput normalizes over the measured window, not the whole run.
  EXPECT_DOUBLE_EQ(windowed.throughput,
                   static_cast<double>(windowed.transactions) / 1500.0);

  // Degenerate windows are rejected; warmup=0 is the whole-run default.
  EXPECT_THROW(collect_run(*net, 3000, 3000), Error);
  EXPECT_EQ(whole.transactions, collect_run(*net, 3000, 0).transactions);
}

TEST(Histogram, CountsMatchLatencyStats) {
  auto net = loaded_net();
  const auto lat = collect_latency(*net);
  const auto hist = collect_histogram(*net, 5);
  EXPECT_EQ(hist.total, lat.count);
  std::uint64_t sum = 0;
  for (const auto b : hist.bins) sum += b;
  EXPECT_EQ(sum, hist.total);
  // The bin containing the minimum is the first nonempty one.
  const std::size_t first_bin = lat.min / 5;
  for (std::size_t i = 0; i < first_bin; ++i) {
    EXPECT_EQ(hist.bins[i], 0u);
  }
  EXPECT_GT(hist.bins[first_bin], 0u);
}

TEST(Histogram, CdfMonotoneAndBounded) {
  auto net = loaded_net();
  const auto hist = collect_histogram(*net, 10);
  double prev = 0.0;
  for (std::uint64_t l = 0; l < 500; l += 10) {
    const double c = hist.cdf(l);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(hist.cdf(100000), 1.0, 1e-12);
}

TEST(Histogram, CdfOfMaxIsOneForSingleBinData) {
  // Regression: the old bin test `(i+1)*w - 1 <= latency` skipped the
  // bin *containing* the latency, so with every sample in bin 0 (bin
  // width beyond the max latency) cdf(max) returned 0.0.
  LatencyHistogram hist;
  hist.bin_width = 1000;
  hist.bins = {7};  // all 7 samples in [0, 1000)
  hist.total = 7;
  EXPECT_DOUBLE_EQ(hist.cdf(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.cdf(42), 1.0);
  EXPECT_DOUBLE_EQ(hist.cdf(999), 1.0);

  // And through the collector: one giant bin swallowing a real run.
  auto net = loaded_net();
  const auto lat = collect_latency(*net);
  const auto wide = collect_histogram(*net, lat.max + 1);
  ASSERT_EQ(wide.bins.size(), 1u);
  EXPECT_DOUBLE_EQ(wide.cdf(lat.max), 1.0);

  // At any bin width, the bin containing the max sample counts.
  const auto narrow = collect_histogram(*net, 10);
  EXPECT_DOUBLE_EQ(narrow.cdf(lat.max), 1.0);
}

TEST(Histogram, RejectsZeroBinWidth) {
  auto net = loaded_net(0.01);
  EXPECT_THROW(collect_histogram(*net, 0), Error);
}

TEST(Histogram, ToStringListsNonEmptyBins) {
  auto net = loaded_net();
  const auto hist = collect_histogram(*net, 10);
  const std::string s = hist.to_string();
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.find("["), std::string::npos);
}

TEST(LinkLoads, SortedAndConsistent) {
  auto net = loaded_net();
  const auto loads = collect_link_loads(*net, 3000);
  ASSERT_EQ(loads.size(), net->links().size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(loads[i].flits, loads[i - 1].flits);
    }
    EXPECT_FALSE(loads[i].name.empty());
    EXPECT_EQ(loads[i].corrupted, 0u);  // no error injection here
    total += loads[i].flits;
  }
  EXPECT_EQ(total, net->total_link_flits());
}

TEST(LatencyCsv, WritesOneRowPerLatencyCarryingTransaction) {
  auto net = loaded_net();  // read_fraction 1.0: every txn carries latency
  std::size_t completed = 0;
  for (std::size_t i = 0; i < net->num_initiators(); ++i) {
    completed += net->master(i).completed().size();
  }
  const std::string path = ::testing::TempDir() + "/xpl_lat.csv";
  const std::size_t rows = write_latency_csv(*net, path);
  EXPECT_EQ(rows, completed);

  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "initiator,thread,issue_cycle,complete_cycle,latency,beats");
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, rows);
}

TEST(LatencyCsv, ExcludesPostedWritesAndPreWarmupRows) {
  // A run with posted writes: those complete at issue and used to leak
  // into the CSV as zero-latency rows, and the exporter ignored warmup
  // entirely — both now follow collect_latency's filter exactly.
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  TrafficConfig tcfg;
  tcfg.injection_rate = 0.06;
  tcfg.read_fraction = 0.5;  // half the traffic is posted writes
  tcfg.seed = 9;
  TrafficDriver driver(net, tcfg);
  driver.run(3000);
  net.run_until_quiescent(50000);

  std::size_t total = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    total += net.master(i).completed().size();
  }

  const std::string path = ::testing::TempDir() + "/xpl_lat_warm.csv";
  const std::size_t whole = write_latency_csv(net, path);
  EXPECT_LT(whole, total);  // posted writes are gone
  EXPECT_EQ(whole, collect_latency(net).count);

  const std::size_t windowed = write_latency_csv(net, path, 1500);
  EXPECT_LT(windowed, whole);  // warmup window engaged
  EXPECT_EQ(windowed, collect_latency(net, 1500).count);

  // Every surviving row has positive latency and post-warmup issue.
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::uint64_t ini = 0, thread = 0, issue = 0, complete = 0;
    char c = 0;
    std::istringstream ls(line);
    ls >> ini >> c >> thread >> c >> issue >> c >> complete;
    EXPECT_GE(issue, 1500u);
    EXPECT_GT(complete, issue);
  }
  EXPECT_EQ(lines, windowed);
}

}  // namespace
}  // namespace xpl::traffic
