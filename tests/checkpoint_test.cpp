// Resumable campaigns: checkpoint format round-trip (hexfloat exactness),
// interrupted-then-resumed campaigns producing byte-identical exports at
// any cursor position and job count, and malformed-sidecar rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/error.hpp"
#include "src/sweep/checkpoint.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {
namespace {

/// Small but non-trivial campaign: 6 points, two fifo depths, one of the
/// rates high enough to produce interesting (non-round) float metrics.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "ckpt_scan";
  spec.seed = 7;
  spec.sim_cycles = 200;
  spec.drain_cycles = 4000;
  spec.widths = {2};
  spec.heights = {2};
  spec.fifo_depths = {2, 4};
  spec.injection_rates = {0.01, 0.05, 0.1};
  return spec;
}

TEST(Checkpoint, FormatRoundTripsExactly) {
  const SweepSpec spec = tiny_spec();
  const SweepRunner runner(1);
  const ResultTable table = runner.run(spec);

  Checkpoint ckpt = make_checkpoint(spec, table);
  EXPECT_EQ(ckpt.results.size(), spec.num_points());

  const std::string text = write_checkpoint(ckpt);
  Checkpoint reparsed = parse_checkpoint(text);
  // Canonical: serializing the parsed form reproduces the bytes.
  EXPECT_EQ(write_checkpoint(reparsed), text);

  const SweepSpec restored = checkpoint_spec(reparsed);
  EXPECT_EQ(restored.num_points(), spec.num_points());
  ASSERT_EQ(reparsed.results.size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const SweepResult& a = table.row(i);
    const SweepResult& b = reparsed.results[i];
    EXPECT_EQ(b.point.index, i);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_TRUE(b.evaluated);
    EXPECT_EQ(a.transactions, b.transactions);
    // Hexfloat storage: bit-exact doubles, not merely close.
    EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
    EXPECT_EQ(a.p95_latency_cycles, b.p95_latency_cycles);
    EXPECT_EQ(a.throughput_tpc, b.throughput_tpc);
    EXPECT_EQ(a.avg_link_utilization, b.avg_link_utilization);
    EXPECT_EQ(a.area_mm2, b.area_mm2);
    EXPECT_EQ(a.power_mw, b.power_mw);
    EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
    // Rebinding restored the full point (seeds included).
    EXPECT_EQ(a.point.net.seed, b.point.net.seed);
    EXPECT_EQ(a.point.traffic.injection_rate, b.point.traffic.injection_rate);
  }
}

TEST(Checkpoint, ErrorStringsSurviveEscaping) {
  SweepResult r;
  r.point.index = 0;
  r.evaluated = true;
  r.error = "line one\nline \\ two, with spaces";
  Checkpoint ckpt;
  ckpt.spec_text = write_sweep(tiny_spec());
  ckpt.num_points = 6;
  ckpt.results.push_back(r);
  const Checkpoint reparsed = parse_checkpoint(write_checkpoint(ckpt));
  ASSERT_EQ(reparsed.results.size(), 1u);
  EXPECT_EQ(reparsed.results[0].error, r.error);
}

/// Interrupt at `cut` completed points, resume with `resume_jobs` workers,
/// and require the finished exports byte-identical to `ref_csv`/`ref_json`.
void check_resume(const SweepSpec& spec, std::size_t cut,
                  std::size_t resume_jobs, const std::string& ref_csv,
                  const std::string& ref_json) {
  // Phase 1: run with halt_after = cut, checkpointing every result — the
  // library-level equivalent of killing xsweep mid-campaign.
  Checkpoint saved;
  {
    const SweepRunner runner(1);  // jobs 1: halt lands exactly at `cut`
    RunOptions opts;
    opts.halt_after = cut;
    opts.on_progress = [&](const ResultTable& partial) {
      saved = make_checkpoint(spec, partial);
    };
    const ResultTable partial = runner.run(spec, opts);
    std::size_t evaluated = 0;
    for (const auto& r : partial.rows()) evaluated += r.evaluated ? 1 : 0;
    ASSERT_EQ(evaluated, cut);
  }
  // Round-trip the sidecar through its text form, as a real resume would.
  Checkpoint reloaded = parse_checkpoint(write_checkpoint(saved));
  const SweepSpec restored = checkpoint_spec(reloaded);
  ASSERT_EQ(reloaded.results.size(), cut);

  // Phase 2: resume and finish.
  const SweepRunner runner(resume_jobs);
  RunOptions opts;
  opts.resume = &reloaded.results;
  const ResultTable table = runner.run(restored, opts);
  EXPECT_EQ(table.to_csv(), ref_csv) << "cut=" << cut;
  EXPECT_EQ(table.to_json(), ref_json) << "cut=" << cut;
}

TEST(Checkpoint, ResumeIsByteIdenticalAtEveryCursorAndJobCount) {
  const SweepSpec spec = tiny_spec();
  const ResultTable reference = SweepRunner(1).run(spec);
  const std::string ref_csv = reference.to_csv();
  const std::string ref_json = reference.to_json();
  // Also pin that parallel uninterrupted runs match the serial reference.
  EXPECT_EQ(SweepRunner(8).run(spec).to_csv(), ref_csv);

  for (const std::size_t cut : {std::size_t{1}, std::size_t{3},
                                std::size_t{5}}) {
    check_resume(spec, cut, 1, ref_csv, ref_json);
    check_resume(spec, cut, 8, ref_csv, ref_json);
  }
}

TEST(Checkpoint, ResumeIsByteIdenticalAcrossSimThreadCounts) {
  // A campaign interrupted on one machine and resumed with a different
  // per-point thread count (xsweep --sim-threads) must finish with the
  // same bytes: threads/partitions are throughput knobs, not axes.
  const SweepSpec spec = tiny_spec();
  const ResultTable reference = SweepRunner(1).run(spec);
  const std::string ref_csv = reference.to_csv();
  const std::string ref_json = reference.to_json();

  Checkpoint saved;
  {
    const SweepRunner runner(1);
    RunOptions opts;
    opts.halt_after = 3;
    opts.on_progress = [&](const ResultTable& partial) {
      saved = make_checkpoint(spec, partial);
    };
    runner.run(spec, opts);
  }
  Checkpoint reloaded = parse_checkpoint(write_checkpoint(saved));
  ASSERT_EQ(reloaded.results.size(), 3u);

  // Resume leg simulates partitioned points — as if the user passed
  // --sim-threads 2 on the second machine.
  SweepSpec restored = checkpoint_spec(reloaded);
  restored.threads = 2;
  restored.partitions = 2;
  RunOptions opts;
  opts.resume = &reloaded.results;
  const ResultTable table = SweepRunner(2).run(restored, opts);
  EXPECT_EQ(table.to_csv(), ref_csv);
  EXPECT_EQ(table.to_json(), ref_json);
}

TEST(Checkpoint, ResumeIsByteIdenticalAcrossSchedulerChoice) {
  // tiny_spec carries no scheduler directive, so the resolver picks per
  // point by load (time-leap at the low rates, gated above). A resume may
  // land on a different choice — an xsweep --gated/--timeleap override,
  // or a changed auto_scheduler threshold — and must still finish with
  // the same bytes: schedulers are throughput knobs, never axes.
  SweepSpec gated = tiny_spec();
  gated.scheduler = "gated";
  gated.scheduler_pinned = true;
  const ResultTable reference = SweepRunner(1).run(gated);
  const std::string ref_csv = reference.to_csv();
  const std::string ref_json = reference.to_json();

  // Unpinned (mixed-scheduler) campaign: same exports, and the sidecar
  // bytes are identical too — a checkpoint never records the choice.
  const SweepSpec auto_spec = tiny_spec();
  const ResultTable auto_table = SweepRunner(1).run(auto_spec);
  EXPECT_EQ(auto_table.to_csv(), ref_csv);
  EXPECT_EQ(auto_table.to_json(), ref_json);
  EXPECT_EQ(write_checkpoint(make_checkpoint(auto_spec, auto_table)),
            write_checkpoint(make_checkpoint(gated, reference)));

  // Interrupt under the auto choice, resume pinned to time_leap (as
  // xsweep --resume --timeleap would).
  Checkpoint saved;
  {
    const SweepRunner runner(1);
    RunOptions opts;
    opts.halt_after = 3;
    opts.on_progress = [&](const ResultTable& partial) {
      saved = make_checkpoint(auto_spec, partial);
    };
    runner.run(auto_spec, opts);
  }
  Checkpoint reloaded = parse_checkpoint(write_checkpoint(saved));
  ASSERT_EQ(reloaded.results.size(), 3u);
  SweepSpec restored = checkpoint_spec(reloaded);
  restored.scheduler = "time_leap";
  restored.scheduler_pinned = true;
  RunOptions opts;
  opts.resume = &reloaded.results;
  const ResultTable table = SweepRunner(1).run(restored, opts);
  EXPECT_EQ(table.to_csv(), ref_csv);
  EXPECT_EQ(table.to_json(), ref_json);
}

TEST(Checkpoint, SaveIsAtomicAndLoadable) {
  const SweepSpec spec = tiny_spec();
  const ResultTable table = SweepRunner(1).run(spec);
  const Checkpoint ckpt = make_checkpoint(spec, table);

  const std::string path =
      testing::TempDir() + "/checkpoint_test_atomic.ckpt";
  save_checkpoint(ckpt, path);
  // The temp file must be gone after the rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(write_checkpoint(loaded), write_checkpoint(ckpt));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMalformedSidecars) {
  const std::string spec_text = write_sweep(tiny_spec());
  const std::string header =
      "checkpoint 1\nspec_begin\n" + spec_text + "spec_end\npoints 6\n";

  // Unsupported version.
  EXPECT_THROW(parse_checkpoint("checkpoint 2\n"), Error);
  // Missing pieces.
  EXPECT_THROW(parse_checkpoint(""), Error);
  EXPECT_THROW(parse_checkpoint("checkpoint 1\n"), Error);
  EXPECT_THROW(parse_checkpoint("spec_begin\n" + spec_text + "spec_end\n"),
               Error);
  // Truncated spec block.
  EXPECT_THROW(parse_checkpoint("checkpoint 1\nspec_begin\nsweep x\n"),
               Error);
  // Bad result rows: truncated, index out of range, bad float, duplicate.
  EXPECT_THROW(parse_checkpoint(header + "result 0 1 5\n"), Error);
  const std::string row =
      " 1 10 20 0 0 0x1p+3 0x1p+4 0x1p-5 0x1p-6 0x1p-7 0x1p-8 0x1p+9\n";
  EXPECT_THROW(parse_checkpoint(header + "result 6" + row), Error);
  EXPECT_THROW(
      parse_checkpoint(header +
                       "result 0 1 10 20 0 0 nope 0x1p+4 0x1p-5 0x1p-6 "
                       "0x1p-7 0x1p-8 0x1p+9\n"),
      Error);
  EXPECT_THROW(
      parse_checkpoint(header + "result 0" + row + "result 0" + row), Error);
  // Unknown directive.
  EXPECT_THROW(parse_checkpoint(header + "bogus 1\n"), Error);
  // result before the points line.
  EXPECT_THROW(
      parse_checkpoint("checkpoint 1\nspec_begin\n" + spec_text +
                       "spec_end\nresult 0" + row),
      Error);

  // Errors carry the offending line number (the bad row is the first
  // line after the header block).
  const std::size_t bad_line =
      static_cast<std::size_t>(
          std::count(header.begin(), header.end(), '\n')) +
      1;
  try {
    parse_checkpoint(header + "result 0 1 5\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint line " +
                                         std::to_string(bad_line)),
              std::string::npos)
        << e.what();
  }

  // checkpoint_spec cross-checks: non-canonical spec, point-count drift.
  {
    Checkpoint ckpt;
    ckpt.spec_text = "sweep renamed\n";  // parses, but not canonical
    ckpt.num_points = 6;
    EXPECT_THROW(checkpoint_spec(ckpt), Error);
  }
  {
    Checkpoint ckpt;
    ckpt.spec_text = spec_text;
    ckpt.num_points = 5;  // spec resolves to 6
    EXPECT_THROW(checkpoint_spec(ckpt), Error);
  }
}

}  // namespace
}  // namespace xpl::sweep
