// Error-detection properties of the link-level checksum codes.
#include "src/common/crc.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace xpl {
namespace {

TEST(Crc, Widths) {
  EXPECT_EQ(crc_width(CrcKind::kNone), 0u);
  EXPECT_EQ(crc_width(CrcKind::kParity), 1u);
  EXPECT_EQ(crc_width(CrcKind::kCrc8), 8u);
  EXPECT_EQ(crc_width(CrcKind::kCrc16), 16u);
}

TEST(Crc, NoneAlwaysPasses) {
  BitVector v(40, 0x12345);
  EXPECT_TRUE(crc_check(CrcKind::kNone, v, 0));
}

TEST(Crc, ParityOfKnownVectors) {
  EXPECT_EQ(crc_compute(CrcKind::kParity, BitVector(8, 0b1011)), 1u);
  EXPECT_EQ(crc_compute(CrcKind::kParity, BitVector(8, 0b1111)), 0u);
  EXPECT_EQ(crc_compute(CrcKind::kParity, BitVector(8, 0)), 0u);
}

// Independent serial reference for the LFSR the hardware implements:
// LSB-first message order, MSB-first shift register, zero initial value.
// crc_compute runs a byte-at-a-time table form of the same recurrence;
// this sweep proves the two agree at every width, including the partial
// tail byte and the word boundaries (63/64/65/128).
std::uint16_t crc_serial_reference(const BitVector& bits, std::uint16_t poly,
                                   unsigned width) {
  std::uint16_t reg = 0;
  const auto top = static_cast<std::uint16_t>(1u << (width - 1));
  const auto mask = static_cast<std::uint16_t>(
      (width == 16) ? 0xFFFFu : ((1u << width) - 1));
  for (std::size_t i = 0; i < bits.width(); ++i) {
    const bool in = bits.get(i);
    const bool msb = (reg & top) != 0;
    reg = static_cast<std::uint16_t>((reg << 1) & mask);
    if (in != msb) reg = static_cast<std::uint16_t>(reg ^ poly);
  }
  return static_cast<std::uint16_t>(reg & mask);
}

TEST(Crc, TableFormMatchesSerialLfsrAtEveryWidth) {
  Rng rng(77);
  for (std::size_t width = 1; width <= 200; ++width) {
    for (int rep = 0; rep < 4; ++rep) {
      BitVector v(width);
      for (std::size_t i = 0; i < width; ++i) v.set(i, rng.chance(0.5));
      ASSERT_EQ(crc_compute(CrcKind::kCrc8, v),
                crc_serial_reference(v, 0x07, 8))
          << "crc8 width=" << width;
      ASSERT_EQ(crc_compute(CrcKind::kCrc16, v),
                crc_serial_reference(v, 0x1021, 16))
          << "crc16 width=" << width;
    }
  }
}

TEST(Crc, DeterministicAndSelfConsistent) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector v(70);
    for (std::size_t i = 0; i < 70; ++i) v.set(i, rng.chance(0.5));
    for (const auto kind :
         {CrcKind::kParity, CrcKind::kCrc8, CrcKind::kCrc16}) {
      const auto sum = crc_compute(kind, v);
      EXPECT_EQ(sum, crc_compute(kind, v));
      EXPECT_TRUE(crc_check(kind, v, sum));
    }
  }
}

TEST(Crc, ChecksumFitsDeclaredWidth) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector v(50);
    for (std::size_t i = 0; i < 50; ++i) v.set(i, rng.chance(0.5));
    EXPECT_LE(crc_compute(CrcKind::kParity, v), 1u);
    EXPECT_LE(crc_compute(CrcKind::kCrc8, v), 0xFFu);
  }
}

// Every code must detect every single-bit error (CRC polynomials with the
// +1 term and parity both guarantee this).
class SingleBitErrorSweep : public ::testing::TestWithParam<CrcKind> {};

TEST_P(SingleBitErrorSweep, AllSingleBitFlipsDetected) {
  const CrcKind kind = GetParam();
  Rng rng(23);
  BitVector v(66);
  for (std::size_t i = 0; i < 66; ++i) v.set(i, rng.chance(0.5));
  const auto sum = crc_compute(kind, v);
  for (std::size_t i = 0; i < v.width(); ++i) {
    BitVector bad = v;
    bad.set(i, !bad.get(i));
    EXPECT_FALSE(crc_check(kind, bad, sum)) << "undetected flip at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SingleBitErrorSweep,
                         ::testing::Values(CrcKind::kParity, CrcKind::kCrc8,
                                           CrcKind::kCrc16));

// CRC8/16 detect all burst errors shorter than the CRC width.
class BurstErrorSweep : public ::testing::TestWithParam<CrcKind> {};

TEST_P(BurstErrorSweep, ShortBurstsDetected) {
  const CrcKind kind = GetParam();
  const std::size_t crc_bits = crc_width(kind);
  Rng rng(31);
  BitVector v(80);
  for (std::size_t i = 0; i < 80; ++i) v.set(i, rng.chance(0.5));
  const auto sum = crc_compute(kind, v);
  for (std::size_t burst = 2; burst <= crc_bits; ++burst) {
    for (std::size_t pos = 0; pos + burst <= v.width(); pos += 5) {
      BitVector bad = v;
      // Burst: first and last bit flipped, middle random.
      bad.set(pos, !bad.get(pos));
      bad.set(pos + burst - 1, !bad.get(pos + burst - 1));
      EXPECT_FALSE(crc_check(kind, bad, sum))
          << "undetected burst len " << burst << " at " << pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BurstErrorSweep,
                         ::testing::Values(CrcKind::kCrc8, CrcKind::kCrc16));

TEST(Crc, RandomErrorsMostlyDetected) {
  // Sanity: CRC8 misses at most ~1/2^8 of random corruptions.
  Rng rng(41);
  int undetected = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    BitVector v(64, rng.next_u64());
    const auto sum = crc_compute(CrcKind::kCrc8, v);
    BitVector bad(64, rng.next_u64());
    if (bad == v) continue;
    if (crc_check(CrcKind::kCrc8, bad, sum)) ++undetected;
  }
  EXPECT_LT(undetected, trials / 100);
}

}  // namespace
}  // namespace xpl
