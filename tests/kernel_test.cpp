// Two-phase kernel semantics: order independence, signal commit timing.
#include "src/sim/kernel.hpp"

#include <gtest/gtest.h>

namespace xpl::sim {
namespace {

// A register stage: out <= in each cycle.
class Stage : public Module {
 public:
  Stage(std::string name, Signal<int>& in, Signal<int>& out)
      : Module(std::move(name)), in_(in), out_(out) {}
  void tick(Kernel&) override { out_.write(in_.read()); }

 private:
  Signal<int>& in_;
  Signal<int>& out_;
};

// A counter driving a signal.
class Counter : public Module {
 public:
  Counter(std::string name, Signal<int>& out)
      : Module(std::move(name)), out_(out) {}
  void tick(Kernel&) override { out_.write(++count_); }

 private:
  Signal<int>& out_;
  int count_ = 0;
};

TEST(Kernel, SignalHoldsUntilCommit) {
  Kernel k;
  auto& sig = k.make_signal<int>(0);
  sig.write(42);
  EXPECT_EQ(sig.read(), 0);  // not yet committed
  sig.commit();
  EXPECT_EQ(sig.read(), 42);
}

TEST(Kernel, SignalWithoutWriteKeepsValue) {
  Kernel k;
  auto& sig = k.make_signal<int>(7);
  sig.commit();
  EXPECT_EQ(sig.read(), 7);
}

TEST(Kernel, PipelineDelaysOneCyclePerStage) {
  Kernel k;
  auto& a = k.make_signal<int>(0);
  auto& b = k.make_signal<int>(0);
  auto& c = k.make_signal<int>(0);
  Counter src("src", a);
  Stage s1("s1", a, b);
  Stage s2("s2", b, c);
  k.add_module(src);
  k.add_module(s1);
  k.add_module(s2);

  // After n steps: a == n, b == n-1, c == n-2.
  k.run(5);
  EXPECT_EQ(a.read(), 5);
  EXPECT_EQ(b.read(), 4);
  EXPECT_EQ(c.read(), 3);
}

TEST(Kernel, ModuleOrderDoesNotChangeResults) {
  auto run_with_order = [](bool reversed) {
    Kernel k;
    auto& a = k.make_signal<int>(0);
    auto& b = k.make_signal<int>(0);
    auto& c = k.make_signal<int>(0);
    Counter src("src", a);
    Stage s1("s1", a, b);
    Stage s2("s2", b, c);
    if (reversed) {
      k.add_module(s2);
      k.add_module(s1);
      k.add_module(src);
    } else {
      k.add_module(src);
      k.add_module(s1);
      k.add_module(s2);
    }
    k.run(7);
    return std::tuple{a.read(), b.read(), c.read()};
  };
  EXPECT_EQ(run_with_order(false), run_with_order(true));
}

TEST(Kernel, CycleCounts) {
  Kernel k;
  EXPECT_EQ(k.cycle(), 0u);
  k.run(10);
  EXPECT_EQ(k.cycle(), 10u);
  k.step();
  EXPECT_EQ(k.cycle(), 11u);
}

TEST(Kernel, RunUntilStopsEarly) {
  Kernel k;
  auto& a = k.make_signal<int>(0);
  Counter src("src", a);
  k.add_module(src);
  const auto steps = k.run_until([&] { return a.read() >= 5; }, 100);
  EXPECT_EQ(steps, 5u);
  EXPECT_EQ(a.read(), 5);
}

TEST(Kernel, RunUntilHitsCap) {
  Kernel k;
  const auto steps = k.run_until([] { return false; }, 17);
  EXPECT_EQ(steps, 17u);
}

TEST(Kernel, ProbesRunAfterCommit) {
  Kernel k;
  auto& a = k.make_signal<int>(0);
  Counter src("src", a);
  k.add_module(src);
  std::vector<int> observed;
  k.add_probe([&](std::uint64_t) { observed.push_back(a.read()); });
  k.run(3);
  EXPECT_EQ(observed, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, CountsModulesAndSignals) {
  Kernel k;
  auto& a = k.make_signal<int>(0);
  auto& b = k.make_signal<int>(0);
  Stage s("s", a, b);
  k.add_module(s);
  EXPECT_EQ(k.module_count(), 1u);
  EXPECT_EQ(k.signal_count(), 2u);
}

}  // namespace
}  // namespace xpl::sim
