// Golden determinism pins for the simulation core.
//
// These tests compare byte-exact artifacts — campaign CSV/JSON exports and
// a recorded `.trace` — against files checked in under tests/golden/. They
// were generated *before* the hot-path refactor (inline flit storage,
// pooled signal commit, ring-buffer FIFOs) landed, so any refactor of the
// core must reproduce the seed behaviour bit for bit to stay green. Both
// kernel schedulers are pinned: the default runs exercise `scheduler
// gated`, and the scheduler-invariance test re-runs the campaign under
// `scheduler full` against the same bytes.
//
// Regenerating (only when an intentional behaviour change is reviewed):
//   XPL_UPDATE_GOLDEN=1 ./golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/link/flow.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/trace.hpp"

namespace xpl {
namespace {

std::string golden_dir() { return std::string(XPL_SOURCE_DIR) + "/tests/golden/"; }

bool update_mode() { return std::getenv("XPL_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << bytes;
}

/// Compares `bytes` against the pinned golden file (or rewrites it in
/// update mode). On mismatch the first differing offset is reported.
void expect_golden(const std::string& name, const std::string& bytes) {
  const std::string path = golden_dir() + name;
  if (update_mode()) {
    write_file(path, bytes);
    return;
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing golden file " << path
                             << " (run with XPL_UPDATE_GOLDEN=1 to create)";
  if (bytes == want) return;
  std::size_t off = 0;
  while (off < bytes.size() && off < want.size() && bytes[off] == want[off]) {
    ++off;
  }
  FAIL() << name << " diverges from golden at byte " << off << " (got "
         << bytes.size() << " bytes, want " << want.size() << ")";
}

/// The pinned campaign: small enough to run in seconds, wide enough to
/// exercise two flit widths, two mesh shapes, and bursty + Bernoulli
/// injection. All 16 points are feasible; if one ever fails, the failure
/// row is pinned too.
const char* kCampaignSpec =
    "sweep golden\n"
    "seed 7\n"
    "cycles 1500\n"
    "topology mesh\n"
    "width 2 3\n"
    "height 2\n"
    "flit_width 16 32\n"
    "injection_rate 0.03\n"
    "burstiness 0 0.5\n";

TEST(Golden, CampaignCsvAndJsonAreByteStable) {
  const sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  expect_golden("campaign.csv", table.to_csv());
  expect_golden("campaign.json", table.to_json());
}

TEST(Golden, CampaignIsThreadCountInvariant) {
  const sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
  const sweep::ResultTable t1 = sweep::SweepRunner(1).run(spec);
  const sweep::ResultTable t8 = sweep::SweepRunner(8).run(spec);
  EXPECT_EQ(t1.to_csv(), t8.to_csv());
  EXPECT_EQ(t1.to_json(), t8.to_json());
}

TEST(Golden, CampaignIsSchedulerInvariantAgainstGolden) {
  // The pinned artifacts predate the activity-gated kernel. The unpinned
  // runs above leave the scheduler to auto_scheduler() (time-leap at this
  // campaign's low rate); this pins `scheduler full` against the *same*
  // bytes, so the schedulers are anchored to the seed behaviour
  // independently (not merely to each other).
  sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
  ASSERT_EQ(spec.scheduler, "gated");  // the campaign-wide default
  ASSERT_FALSE(spec.scheduler_pinned);
  spec.scheduler = "full";
  spec.scheduler_pinned = true;
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  expect_golden("campaign.csv", table.to_csv());
  expect_golden("campaign.json", table.to_json());
}

TEST(Golden, CampaignIsTimeLeapInvariantAgainstGolden) {
  // Pins `scheduler time_leap` — quiescent cycle gaps skipped via the
  // wake calendar (DESIGN.md §12) — directly against the pre-time-leap
  // artifact bytes, gated and pinned `scheduler gated` likewise.
  for (const char* name : {"time_leap", "gated"}) {
    sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
    spec.scheduler = name;
    spec.scheduler_pinned = true;
    sweep::SweepRunner runner(1);
    const sweep::ResultTable table = runner.run(spec);
    expect_golden("campaign.csv", table.to_csv());
    expect_golden("campaign.json", table.to_json());
  }
}

TEST(Golden, CampaignIsPartitionedTimeLeapInvariantAgainstGolden) {
  // Time-leap composed with conservative partitioning (4 partitions on 4
  // threads, partition-local leaps capped at epoch barriers) must still
  // reproduce the pinned bytes.
  sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
  spec.partitions = 4;
  spec.threads = 4;
  spec.scheduler = "time_leap";
  spec.scheduler_pinned = true;
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  expect_golden("campaign.csv", table.to_csv());
  expect_golden("campaign.json", table.to_json());
}

TEST(Golden, CampaignIsPartitionInvariantAgainstGolden) {
  // The pinned artifacts predate partitioned simulation. Re-running the
  // campaign with every point split into 4 partitions on 4 threads must
  // reproduce the same bytes — partitioning is a throughput knob, never
  // an axis, and the goldens anchor that directly to the seed behaviour.
  sweep::SweepSpec spec = sweep::parse_sweep(kCampaignSpec);
  spec.partitions = 4;
  spec.threads = 4;
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  expect_golden("campaign.csv", table.to_csv());
  expect_golden("campaign.json", table.to_json());
}

/// The flow-control comparison campaign: the same grid under ACK/nACK
/// and credit flow control. Pins (a) that ack_nack rows are identical to
/// what the hard-wired protocol produced, (b) credit-mode results, and
/// (c) the extended flow/credit_stalls export columns.
const char* kFlowCampaignSpec =
    "sweep golden_flow\n"
    "seed 7\n"
    "cycles 1200\n"
    "topology mesh\n"
    "width 2\n"
    "height 2\n"
    "flow ack_nack credit\n"
    "injection_rate 0.05 0.2\n";

TEST(Golden, FlowCampaignCsvIsByteStable) {
  const sweep::SweepSpec spec = sweep::parse_sweep(kFlowCampaignSpec);
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  // Credit mode must never retransmit; under load it must stall instead.
  for (const auto& r : table.rows()) {
    ASSERT_TRUE(r.ok) << r.error;
    if (r.point.net.flow == link::FlowControl::kCredit) {
      EXPECT_EQ(r.retransmissions, 0u);
    }
  }
  expect_golden("campaign_flow.csv", table.to_csv());
}

/// The low-load campaign: injection rates so sparse that the gated
/// scheduler skips most of the network most cycles — the regime the
/// activity gating optimizes. Pinned so the fast path has a golden of
/// its own, and cross-checked against the full scheduler in-test.
const char* kLowLoadCampaignSpec =
    "sweep golden_lowload\n"
    "seed 13\n"
    "cycles 2000\n"
    "topology mesh\n"
    "width 3\n"
    "height 3\n"
    "flow ack_nack credit\n"
    "injection_rate 0.002 0.01\n";

TEST(Golden, LowLoadCampaignCsvIsByteStable) {
  // Unpinned: auto_scheduler() picks time-leap at these rates, so the
  // default leg anchors the leaping kernel to the pinned bytes; the
  // pinned gated and full legs cross-check the per-cycle schedulers.
  sweep::SweepSpec spec = sweep::parse_sweep(kLowLoadCampaignSpec);
  ASSERT_FALSE(spec.scheduler_pinned);
  sweep::SweepRunner runner(1);
  const sweep::ResultTable table = runner.run(spec);
  for (const auto& r : table.rows()) ASSERT_TRUE(r.ok) << r.error;
  expect_golden("campaign_lowload.csv", table.to_csv());

  spec.scheduler_pinned = true;
  for (const char* name : {"gated", "full"}) {
    spec.scheduler = name;
    const sweep::ResultTable pinned_table = runner.run(spec);
    EXPECT_EQ(pinned_table.to_csv(), table.to_csv()) << name;
  }
}

TEST(Golden, RecordedTraceIsByteStable) {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.08;
  tcfg.burstiness = 0.4;
  tcfg.seed = 99;
  workload::TraceRecorder recorder(net, "golden");
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(600);
  net.run_until_quiescent(20000);

  ASSERT_GT(recorder.recorded(), 0u);
  expect_golden("run.trace", workload::write_trace(recorder.trace()));
}

TEST(Golden, RecordedTraceIsTimeLeapInvariant) {
  // Same scenario under the time-leap scheduler: the driver runs through
  // its injector module (lookahead rolls, calendar sleeps) and the
  // recorded `.trace` must still match the pinned bytes — release
  // cycles, not roll cycles, are what the recorder sees.
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.scheduler = sim::Scheduler::kTimeLeap;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.08;
  tcfg.burstiness = 0.4;
  tcfg.seed = 99;
  workload::TraceRecorder recorder(net, "golden");
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(600);
  net.run_until_quiescent(20000);

  ASSERT_GT(recorder.recorded(), 0u);
  expect_golden("run.trace", workload::write_trace(recorder.trace()));
}

TEST(Golden, RecordedTraceIsPartitionInvariant) {
  // Same scenario as RecordedTraceIsByteStable, but simulated as 4
  // partitions on 4 threads: the recorded `.trace` must match the same
  // pinned bytes, epoch pre-roll and all.
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.partitions = 4;
  cfg.sim_threads = 4;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.08;
  tcfg.burstiness = 0.4;
  tcfg.seed = 99;
  workload::TraceRecorder recorder(net, "golden");
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(600);
  net.run_until_quiescent(20000);

  ASSERT_GT(recorder.recorded(), 0u);
  expect_golden("run.trace", workload::write_trace(recorder.trace()));
}

}  // namespace
}  // namespace xpl
