// Virtual channels: per-lane link protocols, dateline lane assignment,
// the VC-aware deadlock checker, and deadlock-free minimal routing on
// rings and tori end to end.
#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"
#include "src/link/flow.hpp"
#include "src/link/goback_n.hpp"
#include "src/link/link.hpp"
#include "src/noc/network.hpp"
#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/deadlock.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl {
namespace {

using topology::NiPlan;
using topology::RoutingAlgorithm;

Flit make_flit(std::uint8_t vc, std::uint64_t tag, bool head = true,
               bool tail = true) {
  BitVector payload(32);
  payload.deposit(0, 32, tag);
  Flit flit(std::move(payload), head, tail);
  flit.vc = vc;
  return flit;
}

// ---------------------------------------------------------------- links

// A stalled lane must not block the other lane of the same physical wire:
// the head-of-line relief per-VC flow control exists for.
TEST(VcLink, GoBackNLanesAreIndependent) {
  sim::Kernel kernel;
  const link::LinkWires wires = link::LinkWires::make(kernel);
  link::ProtocolConfig proto = link::ProtocolConfig::for_link(0);
  proto.vcs = 2;
  link::GoBackNSender tx(wires, proto);
  link::GoBackNReceiver rx(wires, proto);

  std::size_t lane1_accepted = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    tx.begin_cycle();
    if (tx.can_accept(0)) tx.accept(make_flit(0, 0xA0 + cycle));
    if (tx.can_accept(1)) tx.accept(make_flit(1, 0xB0 + cycle));
    tx.end_cycle();
    kernel.step();
    // Lane 0 is wedged (no buffer space downstream); lane 1 drains.
    if (auto flit = rx.begin_cycle(/*can_take_mask=*/0b10)) {
      EXPECT_EQ(flit->vc, 1);
      ++lane1_accepted;
    }
    rx.end_cycle();
    kernel.step();
  }
  EXPECT_GT(lane1_accepted, 5u);
  EXPECT_GT(rx.flow_rejections(), 0u);  // lane 0 nACKed for flow
  EXPECT_GT(tx.in_flight(), 0u);        // lane 0's window is parked
}

TEST(VcLink, GoBackNLanesKeepIndependentSequences) {
  sim::Kernel kernel;
  const link::LinkWires wires = link::LinkWires::make(kernel);
  link::ProtocolConfig proto = link::ProtocolConfig::for_link(0);
  proto.vcs = 4;
  link::GoBackNSender tx(wires, proto);
  link::GoBackNReceiver rx(wires, proto);

  // Interleave lanes; every flit must arrive exactly once, in per-lane
  // order, carrying its lane tag.
  std::vector<std::vector<std::uint64_t>> got(4);
  std::size_t sent = 0;
  for (int cycle = 0; cycle < 64; ++cycle) {
    tx.begin_cycle();
    const std::uint8_t lane = static_cast<std::uint8_t>(cycle % 4);
    if (tx.can_accept(lane)) {
      tx.accept(make_flit(lane, 100 * lane + sent));
      ++sent;
    }
    tx.end_cycle();
    kernel.step();
    if (auto flit = rx.begin_cycle(0b1111)) {
      got[flit->vc].push_back(flit->payload.slice(0, 32));
    }
    rx.end_cycle();
    kernel.step();
  }
  std::size_t received = 0;
  for (std::size_t v = 0; v < 4; ++v) {
    for (std::size_t k = 0; k + 1 < got[v].size(); ++k) {
      EXPECT_LT(got[v][k], got[v][k + 1]);  // in order within the lane
    }
    received += got[v].size();
  }
  EXPECT_GT(received, 32u);
  EXPECT_EQ(rx.crc_rejections(), 0u);
}

TEST(VcLink, CreditLanesAreIndependent) {
  sim::Kernel kernel;
  const link::LinkWires wires = link::LinkWires::make(kernel);
  link::ProtocolConfig proto = link::ProtocolConfig::for_link(0);
  proto.vcs = 2;
  link::CreditSender tx(wires, proto);
  link::CreditReceiver rx(wires, proto);

  std::size_t lane1_accepted = 0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    tx.begin_cycle();
    if (tx.can_accept(0)) tx.accept(make_flit(0, cycle));
    if (tx.can_accept(1)) tx.accept(make_flit(1, cycle));
    tx.end_cycle();
    kernel.step();
    if (auto flit = rx.begin_cycle(/*can_take_mask=*/0b10)) {
      EXPECT_EQ(flit->vc, 1);
      ++lane1_accepted;
    }
    rx.end_cycle();
    kernel.step();
  }
  // Lane 0 burned its credits and parked; lane 1 kept moving.
  EXPECT_EQ(tx.credits(0), 0u);
  EXPECT_GT(lane1_accepted, 10u);

  // Stop offering traffic: once lane 1 drains, the sender sits idle with
  // lane 0's whole window parked downstream — the credit-stall signal.
  for (int cycle = 0; cycle < 10; ++cycle) {
    tx.begin_cycle();
    tx.end_cycle();
    kernel.step();
    rx.begin_cycle(/*can_take_mask=*/0b10);
    rx.end_cycle();
    kernel.step();
  }
  EXPECT_GT(tx.credit_stalls(), 0u);
}

// ------------------------------------------------- dateline assignment

TEST(VcRouting, DatelineLanesOnRing) {
  const auto topo = make_ring(8, NiPlan::uniform(8, 1, 1));
  // Initiator on switch 6 -> target on switch 1: the minimal CW arc
  // crosses the 7->0 wrap (the dateline), so the lane bumps to 1 there.
  const auto inis = topo.initiator_ids();
  const auto tgts = topo.target_ids();
  const Route route = topology::compute_route(
      topo, inis[6], tgts[1], RoutingAlgorithm::kShortestPath);
  const auto lanes = topology::dateline_route_vcs(topo, inis[6], route, 2);
  ASSERT_EQ(lanes.size(), 3u);  // 6->7, 7->0, 0->1
  EXPECT_EQ(lanes[0], 0);
  EXPECT_EQ(lanes[1], 1);  // the wrap link itself travels on lane 1
  EXPECT_EQ(lanes[2], 1);

  // A route that never wraps stays on lane 0.
  const Route inner = topology::compute_route(
      topo, inis[1], tgts[3], RoutingAlgorithm::kShortestPath);
  for (const auto lane :
       topology::dateline_route_vcs(topo, inis[1], inner, 2)) {
    EXPECT_EQ(lane, 0);
  }
}

TEST(VcRouting, DatelineLanesResetPerTorusDimension) {
  const auto topo = make_torus(4, 4, NiPlan::uniform(16, 1, 1));
  const auto inis = topo.initiator_ids();
  const auto tgts = topo.target_ids();
  // Every pair: lanes must be in {0, 1} with 2 VCs — the per-dimension
  // reset keeps one dateline bump per dimension sufficient.
  for (const auto src : inis) {
    for (const auto dst : tgts) {
      if (topo.ni(src).switch_id == topo.ni(dst).switch_id) continue;
      const Route route = topology::compute_route(
          topo, src, dst, RoutingAlgorithm::kShortestPath);
      const auto lanes =
          topology::dateline_route_vcs(topo, src, route, 2);
      for (const auto lane : lanes) EXPECT_LE(lane, 1);
    }
  }
}

TEST(VcRouting, MinimalRoutesStayShortestOnAnnotatedTopologies) {
  // Class-monotone minimal routing must not stretch paths: torus distance
  // is the per-dimension wrap distance sum; spidergon distance is the
  // cross/ring composition.
  const auto torus = make_torus(4, 4, NiPlan::uniform(16, 1, 1));
  const auto inis = torus.initiator_ids();
  const auto tgts = torus.target_ids();
  for (const auto src : inis) {
    for (const auto dst : tgts) {
      const auto a = torus.ni(src).switch_id;
      const auto b = torus.ni(dst).switch_id;
      if (a == b) continue;
      const int dx = std::abs(int(a % 4) - int(b % 4));
      const int dy = std::abs(int(a / 4) - int(b / 4));
      const std::size_t dist = static_cast<std::size_t>(
          std::min(dx, 4 - dx) + std::min(dy, 4 - dy));
      const Route route = topology::compute_route(
          torus, src, dst, RoutingAlgorithm::kShortestPath);
      EXPECT_EQ(route.size(), dist + 1);  // + ejection selector
    }
  }
}

// ---------------------------------------------------- VC-aware checker

TEST(VcDeadlock, RingMinimalFlaggedAtOneLaneProvedAtTwo) {
  const auto topo = make_ring(8, NiPlan::uniform(8, 1, 1));
  const auto tables =
      topology::compute_all_routes(topo, RoutingAlgorithm::kShortestPath);

  const auto p1 = topology::make_vc_policy(
      topo, RoutingAlgorithm::kShortestPath, 1);
  EXPECT_FALSE(p1.dateline);
  EXPECT_FALSE(topology::check_deadlock(topo, tables, p1).deadlock_free);

  const auto p2 = topology::make_vc_policy(
      topo, RoutingAlgorithm::kShortestPath, 2);
  EXPECT_TRUE(p2.dateline);
  EXPECT_TRUE(topology::check_deadlock(topo, tables, p2).deadlock_free);
}

TEST(VcDeadlock, TorusMinimalFlaggedAtOneLaneProvedAtTwo) {
  const auto topo = make_torus(4, 4, NiPlan::uniform(16, 1, 1));
  const auto tables =
      topology::compute_all_routes(topo, RoutingAlgorithm::kShortestPath);
  EXPECT_FALSE(
      topology::check_deadlock(
          topo, tables,
          topology::make_vc_policy(topo, RoutingAlgorithm::kShortestPath, 1))
          .deadlock_free);
  EXPECT_TRUE(
      topology::check_deadlock(
          topo, tables,
          topology::make_vc_policy(topo, RoutingAlgorithm::kShortestPath, 2))
          .deadlock_free);
}

TEST(VcDeadlock, SpidergonMinimalProvedAtTwoLanes) {
  const auto topo = make_spidergon(8, NiPlan::uniform(8, 1, 1));
  const auto tables =
      topology::compute_all_routes(topo, RoutingAlgorithm::kShortestPath);
  EXPECT_TRUE(
      topology::check_deadlock(
          topo, tables,
          topology::make_vc_policy(topo, RoutingAlgorithm::kShortestPath, 2))
          .deadlock_free);
}

TEST(VcDeadlock, LanePreservingSpreadIsVcsCopies) {
  // Round-robin lane assignment cannot fix a deadlocking topology: the
  // graph is just vcs disjoint copies of the single-lane graph.
  topology::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_switch();
  for (std::uint32_t i = 0; i < 4; ++i) topo.add_link(i, (i + 1) % 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    topo.attach_initiator(i);
    topo.attach_target(i);
  }
  const auto tables =
      topology::compute_all_routes(topo, RoutingAlgorithm::kShortestPath);
  const auto report = topology::check_deadlock(
      topo, tables, topology::VcPolicy{/*vcs=*/2, /*dateline=*/false});
  EXPECT_FALSE(report.deadlock_free);

  // And up*/down* stays clean in every lane.
  const auto ring = make_ring(6, NiPlan::uniform(6, 1, 1));
  const auto ud =
      topology::compute_all_routes(ring, RoutingAlgorithm::kUpDown);
  EXPECT_TRUE(topology::check_deadlock(
                  ring, ud, topology::VcPolicy{/*vcs=*/4, /*dateline=*/false})
                  .deadlock_free);
}

// ------------------------------------------------------- whole network

noc::NetworkConfig vc_config(RoutingAlgorithm routing, std::size_t vcs) {
  noc::NetworkConfig cfg;
  cfg.routing = routing;
  cfg.target_window = 1 << 12;
  cfg.vcs = vcs;
  return cfg;
}

/// Wedge diagnosis for a network that failed to drain: every switch's
/// per-lane occupancy and wormhole-lock state.
std::string wedged_state(noc::Network& net) {
  std::string out = "network failed to drain (deadlock?):";
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    out += "\n  " + net.switch_at(s).debug_state();
  }
  return out;
}

/// Saturates `net` for `cycles`, then requires full drain and that every
/// injected transaction completed.
void run_saturated(noc::Network& net, std::size_t cycles = 1500) {
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.30;
  tcfg.seed = 11;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(cycles);
  net.run_until_quiescent(400000);
  ASSERT_TRUE(net.quiescent()) << wedged_state(net);
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    completed += net.master(i).completed().size();
  }
  EXPECT_EQ(completed, driver.injected());
  EXPECT_GT(completed, 0u);
}

TEST(VcNetwork, RingMinimalRejectedWithoutLanes) {
  EXPECT_THROW(noc::Network(make_ring(8, NiPlan::uniform(8, 1, 1)),
                            vc_config(RoutingAlgorithm::kShortestPath, 1)),
               Error);
}

TEST(VcNetwork, RingMinimalSaturatesWithTwoLanes) {
  noc::Network net(make_ring(8, NiPlan::uniform(8, 1, 1)),
                   vc_config(RoutingAlgorithm::kShortestPath, 2));
  EXPECT_TRUE(net.deadlock_report().deadlock_free);
  run_saturated(net);
}

TEST(VcNetwork, TorusMinimalRejectedWithoutLanes) {
  EXPECT_THROW(noc::Network(make_torus(4, 4, NiPlan::uniform(16, 1, 1)),
                            vc_config(RoutingAlgorithm::kShortestPath, 1)),
               Error);
}

TEST(VcNetwork, TorusMinimalSaturatesWithTwoLanes) {
  noc::Network net(make_torus(4, 4, NiPlan::uniform(16, 1, 1)),
                   vc_config(RoutingAlgorithm::kShortestPath, 2));
  EXPECT_TRUE(net.deadlock_report().deadlock_free);
  run_saturated(net);
}

TEST(VcNetwork, MeshXyWithLanesCompletesEveryPair) {
  // Each target gets its own OCP thread, so the write/read pairs ride
  // different lanes (lane = thread % vcs) while staying ordered within
  // their thread — the ordering contract lanes must preserve.
  noc::NetworkConfig cfg = vc_config(RoutingAlgorithm::kXY, 2);
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    for (std::size_t t = 0; t < net.num_targets(); ++t) {
      ocp::Transaction wr;
      wr.cmd = ocp::Cmd::kWriteNp;
      wr.addr = net.target_base(t) + 64 * i;  // 4-beat bursts: no overlap
      wr.burst_len = 4;
      wr.thread_id = static_cast<std::uint32_t>(t % 4);
      wr.data = {1 + i, 2 + t, 3, 4};
      net.master(i).push_transaction(wr);
      ocp::Transaction rd;
      rd.cmd = ocp::Cmd::kRead;
      rd.addr = net.target_base(t) + 64 * i;
      rd.burst_len = 4;
      rd.thread_id = static_cast<std::uint32_t>(t % 4);
      net.master(i).push_transaction(rd);
    }
  }
  net.run_until_quiescent(60000);
  ASSERT_TRUE(net.quiescent());
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    const auto& done = net.master(i).completed();
    ASSERT_EQ(done.size(), 2 * net.num_targets());
    // Threads complete independently; verify the read data as a set.
    std::set<std::pair<std::uint64_t, std::uint64_t>> reads;
    for (const auto& result : done) {
      EXPECT_EQ(result.resp, ocp::Resp::kDva);
      if (result.data.size() == 4) {
        reads.insert({result.data[0], result.data[1]});
      }
    }
    ASSERT_EQ(reads.size(), net.num_targets());
    for (std::size_t t = 0; t < net.num_targets(); ++t) {
      EXPECT_TRUE(reads.count({1 + i, 2 + t})) << "pair " << i << "," << t;
    }
  }
}

TEST(VcNetwork, FourLanesCarrySaturatedCreditTraffic) {
  noc::NetworkConfig cfg = vc_config(RoutingAlgorithm::kXY, 4);
  cfg.flow = link::FlowControl::kCredit;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)), cfg);
  run_saturated(net, 1000);
  EXPECT_EQ(net.total_retransmissions(), 0u);
}

TEST(VcNetwork, ErrorInjectionRecoversAcrossLanes) {
  // The go-back-N story must survive the lane refactor: corrupted flits
  // on any lane are nACKed and retransmitted on that lane.
  noc::NetworkConfig cfg = vc_config(RoutingAlgorithm::kXY, 2);
  cfg.bit_error_rate = 2e-3;
  cfg.crc = CrcKind::kCrc16;
  cfg.seed = 5;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1),
                          /*link_stages=*/1),
      cfg);
  for (int k = 0; k < 16; ++k) {
    ocp::Transaction wr;
    wr.cmd = ocp::Cmd::kWriteNp;
    wr.addr = net.target_base((k + 1) % 4) + 8 * k;
    wr.burst_len = 4;
    wr.data = {1ull * k, 2ull * k, 3ull * k, 4ull * k};
    net.master(k % 4).push_transaction(wr);
  }
  net.run_until_quiescent(200000);
  ASSERT_TRUE(net.quiescent());
  std::size_t completed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (const auto& result : net.master(i).completed()) {
      EXPECT_EQ(result.resp, ocp::Resp::kDva);
      ++completed;
    }
  }
  EXPECT_EQ(completed, 16u);
  EXPECT_GT(net.total_retransmissions(), 0u);
}

// ----------------------------------------------------- sweep plumbing

TEST(VcSweep, VcsAxisColumnsOnlyWhenSwept) {
  EXPECT_EQ(sweep::parse_sweep("cycles 1\n").grid_size(), 1u);

  sweep::SweepSpec spec = sweep::parse_sweep(
      "cycles 100\nwidth 2\nheight 2\nvcs 1 2\n");
  EXPECT_EQ(spec.grid_size(), 2u);
  const auto p0 = spec.point(0);
  const auto p1 = spec.point(1);
  EXPECT_EQ(p0.net.vcs, 1u);
  EXPECT_EQ(p1.net.vcs, 2u);
  EXPECT_EQ(p0.label().find("_v"), std::string::npos);
  EXPECT_NE(p1.label().find("_v2"), std::string::npos);

  // vcs column appears exactly when the axis departs from {1}.
  sweep::ResultTable plain(1);
  sweep::SweepResult r;
  r.point = p0;
  r.ok = true;
  plain.set(r);
  EXPECT_EQ(plain.to_csv().find(",vcs,"), std::string::npos);

  sweep::ResultTable swept(1);
  swept.mark_vcs_axis();
  swept.set(r);
  EXPECT_NE(swept.to_csv().find(",vcs,"), std::string::npos);
  EXPECT_NE(swept.to_json().find("\"vcs\""), std::string::npos);

  // `routing minimal` campaigns resolve the algorithm per point.
  sweep::SweepSpec minimal = sweep::parse_sweep(
      "cycles 100\ntopology ring\nwidth 4\nrouting minimal\nvcs 2\n");
  EXPECT_EQ(minimal.point(0).net.routing,
            topology::RoutingAlgorithm::kShortestPath);
  EXPECT_THROW(sweep::parse_sweep("routing bogus\n"), Error);
  EXPECT_THROW(sweep::parse_sweep("vcs 99\n"), Error);
}

}  // namespace
}  // namespace xpl
