// Trace-driven traffic: parsing and cycle-exact replay.
#include <gtest/gtest.h>

#include <fstream>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::traffic {
namespace {

std::unique_ptr<noc::Network> make_net() {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  return std::make_unique<noc::Network>(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
}

TEST(Trace, ParsesEntriesAndComments) {
  const auto trace = parse_trace(
      "# a trace\n"
      "0 0 1 read 0 1\n"  // offsets are decimal
      "5 1 2 write 16 2\n"
      "\n"
      "9 3 0 writenp 8 1  # trailing comment\n");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].cycle, 0u);
  EXPECT_EQ(trace[0].cmd, ocp::Cmd::kRead);
  EXPECT_EQ(trace[1].initiator, 1u);
  EXPECT_EQ(trace[1].target, 2u);
  EXPECT_EQ(trace[1].cmd, ocp::Cmd::kWrite);
  EXPECT_EQ(trace[1].burst, 2u);
  EXPECT_EQ(trace[2].cmd, ocp::Cmd::kWriteNp);
  EXPECT_EQ(trace[2].addr_offset, 8u);
}

TEST(Trace, RejectsMalformed) {
  EXPECT_THROW(parse_trace("0 0 1 read 0\n"), Error);       // missing burst
  EXPECT_THROW(parse_trace("0 0 1 erase 0 1\n"), Error);    // bad cmd
  EXPECT_THROW(parse_trace("5 0 1 read 0 1\n1 0 1 read 0 1\n"),
               Error);                                      // out of order
  EXPECT_THROW(parse_trace("0 0 1 read 0 0\n"), Error);     // burst 0
}

TEST(Trace, PlayerValidatesAgainstNetwork) {
  auto net = make_net();
  std::vector<TraceEntry> trace{{0, 9, 0, ocp::Cmd::kRead, 0, 1}};
  EXPECT_THROW(TracePlayer(*net, trace), Error);  // initiator 9 missing
  trace[0] = {0, 0, 9, ocp::Cmd::kRead, 0, 1};
  EXPECT_THROW(TracePlayer(*net, trace), Error);  // target 9 missing
  trace[0] = {0, 0, 0, ocp::Cmd::kRead, 0, 200};
  EXPECT_THROW(TracePlayer(*net, trace), Error);  // burst too big
}

TEST(Trace, ReplaysAtScheduledCycles) {
  auto net = make_net();
  const auto trace = parse_trace(
      "0 0 1 writenp 0 1\n"
      "50 1 2 writenp 8 1\n"
      "100 2 3 writenp 16 1\n");
  TracePlayer player(*net, trace);
  player.run(120);
  net->run_until_quiescent(50000);
  EXPECT_TRUE(player.done());
  EXPECT_EQ(player.injected(), 3u);
  // Issue cycles respect the schedule (injection at or after trace cycle).
  EXPECT_GE(net->master(0).completed().at(0).issue_cycle, 0u);
  EXPECT_GE(net->master(1).completed().at(0).issue_cycle, 50u);
  EXPECT_GE(net->master(2).completed().at(0).issue_cycle, 100u);
  // And not absurdly later (the network was idle).
  EXPECT_LE(net->master(1).completed().at(0).issue_cycle, 60u);
  EXPECT_LE(net->master(2).completed().at(0).issue_cycle, 110u);
}

TEST(Trace, WriteThenReadDataFlows) {
  auto net = make_net();
  // Same initiator writes then reads the same location in trace order.
  const auto trace = parse_trace(
      "0 0 2 write 24 1\n"
      "10 0 2 read 24 1\n");
  TracePlayer player(*net, trace);
  player.run(20);
  net->run_until_quiescent(50000);
  const auto& completed = net->master(0).completed();
  ASSERT_EQ(completed.size(), 2u);
  ASSERT_EQ(completed[1].data.size(), 1u);
  // Read returns whatever the traced write stored (payload is generated,
  // so compare via the slave's memory backdoor).
  EXPECT_EQ(completed[1].data[0], net->slave(2).peek(24) & 0xFFFFFFFFull);
}

TEST(Trace, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/xpl.trace";
  {
    std::ofstream out(path);
    out << "0 0 0 read 0 1\n3 1 1 read 0 2\n";
  }
  const auto trace = load_trace(path);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].burst, 2u);
}

}  // namespace
}  // namespace xpl::traffic
