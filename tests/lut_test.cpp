// NI route look-up tables.
#include "src/ni/lut.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace xpl::ni {
namespace {

TEST(RouteLut, LookupHitReturnsOffsetAndRoute) {
  RouteLut lut;
  lut.add_range({0x1000, 0x100, 5});
  lut.set_route(5, Route{1, 2, 3});
  const auto hit = lut.lookup(0x1042);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dst, 5u);
  EXPECT_EQ(hit->offset, 0x42u);
  ASSERT_NE(hit->route, nullptr);
  EXPECT_EQ(*hit->route, (Route{1, 2, 3}));
}

TEST(RouteLut, MissReturnsNullopt) {
  RouteLut lut;
  lut.add_range({0x1000, 0x100, 5});
  lut.set_route(5, Route{1});
  EXPECT_FALSE(lut.lookup(0x0FFF).has_value());
  EXPECT_FALSE(lut.lookup(0x1100).has_value());
}

TEST(RouteLut, BoundariesAreInclusiveExclusive) {
  RouteLut lut;
  lut.add_range({0x100, 0x10, 1});
  lut.set_route(1, Route{0});
  EXPECT_TRUE(lut.lookup(0x100).has_value());
  EXPECT_TRUE(lut.lookup(0x10F).has_value());
  EXPECT_FALSE(lut.lookup(0x110).has_value());
}

TEST(RouteLut, OverlappingRangesRejected) {
  RouteLut lut;
  lut.add_range({0x0, 0x100, 0});
  EXPECT_THROW(lut.add_range({0x80, 0x100, 1}), Error);
  EXPECT_THROW(lut.add_range({0x0, 0x10, 2}), Error);
  // Adjacent is fine.
  lut.add_range({0x100, 0x100, 1});
}

TEST(RouteLut, EmptyRangeRejected) {
  RouteLut lut;
  EXPECT_THROW(lut.add_range({0x0, 0, 0}), Error);
}

TEST(RouteLut, RangeWithoutRouteFailsLookup) {
  RouteLut lut;
  lut.add_range({0x0, 0x100, 3});
  EXPECT_THROW(lut.lookup(0x10), Error);
}

TEST(RouteLut, MultipleWindows) {
  RouteLut lut;
  for (std::uint32_t t = 0; t < 8; ++t) {
    lut.add_range({t * 0x1000ull, 0x1000, t});
    lut.set_route(t, Route{static_cast<std::uint8_t>(t % 4)});
  }
  EXPECT_EQ(lut.num_ranges(), 8u);
  EXPECT_EQ(lut.num_routes(), 8u);
  for (std::uint32_t t = 0; t < 8; ++t) {
    const auto hit = lut.lookup(t * 0x1000ull + 0x123);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->dst, t);
    EXPECT_EQ(hit->offset, 0x123u);
  }
}

TEST(ResponseLut, RoutesPerSource) {
  ResponseLut lut;
  lut.set_route(2, Route{3, 1});
  lut.set_route(7, Route{0});
  ASSERT_NE(lut.route_to(2), nullptr);
  EXPECT_EQ(*lut.route_to(2), (Route{3, 1}));
  ASSERT_NE(lut.route_to(7), nullptr);
  EXPECT_EQ(lut.route_to(3), nullptr);
  EXPECT_EQ(lut.route_to(100), nullptr);
  EXPECT_EQ(lut.num_routes(), 2u);
}

TEST(ResponseLut, RouteOverwrite) {
  ResponseLut lut;
  lut.set_route(1, Route{1});
  lut.set_route(1, Route{2, 2});
  EXPECT_EQ(*lut.route_to(1), (Route{2, 2}));
  EXPECT_EQ(lut.num_routes(), 1u);
}

}  // namespace
}  // namespace xpl::ni
