// Seeded violations for the module-contract checks (XL201, XL202,
// XL203). Never compiled; consumed by tests/lint_test.py.
#include <cstdint>

namespace fixture {

// A concrete module that never claims quiescence: the gated scheduler
// could never skip it, and nothing documents whether that is intended.
class Counter : public sim::Module {  // xlint-expect: XL201
 public:
  void tick(sim::Kernel& kernel) override { ++count_; }

 private:
  std::uint64_t count_ = 0;
};

// is_idle() reads `done_`, which tick() never writes: the quiescence
// claim is decoupled from the state that actually advances.
class Drainer : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (pending_ > 0) --pending_;
  }
  bool is_idle() const override { return done_; }  // xlint-expect: XL202

 private:
  std::uint64_t pending_ = 0;
  bool done_ = false;
};

// Time-driven sleeper without a declared wake: tick() compares the
// kernel clock against a stored cycle, and is_idle() lets the module
// sleep — under the time-leap scheduler nothing would ever revisit it
// at the cycle it is waiting for.
class Timer : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (kernel.cycle() >= fire_at_) fired_ = true;
  }
  bool is_idle() const override { return fired_; }  // xlint-expect: XL203

 private:
  std::uint64_t fire_at_ = 100;
  bool fired_ = false;
};

// Same hazard advertised by the member name instead of a clock read: a
// due/deadline member is a self-scheduled future cycle, and sleeping on
// is_idle() without a next_event() override oversleeps it.
class Resender : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (pending_ > 0 && --resend_due_ == 0) --pending_;
  }
  bool is_idle() const override { return pending_ == 0; }

 private:
  std::uint64_t resend_due_ = 8;  // xlint-expect: XL203
  std::uint64_t pending_ = 1;
};

}  // namespace fixture
