// Seeded violations for the module-contract checks (XL201, XL202).
// Never compiled; consumed by tests/lint_test.py.
#include <cstdint>

namespace fixture {

// A concrete module that never claims quiescence: the gated scheduler
// could never skip it, and nothing documents whether that is intended.
class Counter : public sim::Module {  // xlint-expect: XL201
 public:
  void tick(sim::Kernel& kernel) override { ++count_; }

 private:
  std::uint64_t count_ = 0;
};

// is_idle() reads `done_`, which tick() never writes: the quiescence
// claim is decoupled from the state that actually advances.
class Drainer : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (pending_ > 0) --pending_;
  }
  bool is_idle() const override { return done_; }  // xlint-expect: XL202

 private:
  std::uint64_t pending_ = 0;
  bool done_ = false;
};

}  // namespace fixture
