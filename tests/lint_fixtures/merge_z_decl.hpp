// Declaration half of the cross-file merge fixture; the bodies live in
// merge_a_impl.cpp, which sorts before this file.
#pragma once

#include <cstdint>

namespace fixture {

class Relay : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override;
  bool is_idle() const override { return backlog_ == 0; }

 private:
  void forward();

  sim::Signal<int> out_;
  std::uint64_t backlog_ = 2;
};

}  // namespace fixture
