// Seeded violations for the suppression-hygiene checks (XL000, XL001).
// Never compiled; consumed by tests/lint_test.py.
#include <algorithm>
#include <vector>

namespace fixture {

struct Item {
  int weight = 0;
};

// An empty reason is itself a finding AND the directive does not
// suppress: the sort below still fires.
inline void sort_items(std::vector<Item>& items) {
  // xlint-expect: XL000
  // xlint: sort-ok()
  std::sort(items.begin(), items.end(),  // xlint-expect: XL103
            [](const Item& a, const Item& b) { return a.weight > b.weight; });
}

// Unknown rule slug.
inline int answer() {
  // xlint-expect: XL000
  // xlint: voodoo-ok(definitely fine)
  return 42;
}

// Malformed directive: no <rule>-ok(<reason>) shape at all.
inline int shrug() {
  // xlint-expect: XL000
  // xlint: just trust me
  return 0;
}

// A valid suppression that silences nothing is stale and must be
// removed — std::stable_sort never trips XL103.
inline void sort_stable(std::vector<Item>& items) {
  // xlint-expect: XL001
  // xlint: sort-ok(stable_sort already pins tie order; nothing to silence)
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.weight > b.weight;
                   });
}

}  // namespace fixture
