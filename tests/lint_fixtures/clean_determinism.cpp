// Clean twins for the determinism checks: each pattern XL101-XL104
// flags, written the sanctioned way or carrying a justified
// suppression. tests/lint_test.py asserts zero findings here — the
// checks stay silent on conforming code, and used suppressions do not
// decay into XL001.
#include <algorithm>
#include <cstdint>
#include <ctime>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

struct Row {
  std::string name;
  std::uint64_t weight = 0;
};

class SortedExport {
 public:
  // Iterating a sorted copy: the unordered container's order never
  // escapes. The copy loop itself trips XL101, so it carries the
  // annotation with the reason.
  std::vector<std::pair<std::string, std::uint64_t>> rows() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    // xlint: unordered-ok(copied into `out` and sorted by key below; iteration order cannot escape)
    for (const auto& entry : cells_) {
      out.push_back(entry);
    }
    std::stable_sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, std::uint64_t> cells_;
};

// A comparator with a total tie-break never relies on std::sort's
// unspecified tie handling.
inline void rank(std::vector<Row>& rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.weight != b.weight ? a.weight > b.weight : a.name < b.name;
  });
}

// Distinct keys by construction: the suppression documents why ties
// cannot occur instead of paying for a tie-break.
inline void order_by_id(std::vector<std::uint64_t>& ids) {
  // xlint: sort-ok(ids are unique by construction; no ties exist for the comparator to scramble)
  std::sort(ids.begin(), ids.end(),
            [](std::uint64_t a, std::uint64_t b) { return a > b; });
}

// Host-side seam: wall-clock timing of the harness process, never
// simulation state. The suppression reason is the contract.
inline std::uint64_t harness_epoch() {
  // xlint: banned-ok(host-side harness timing only; never feeds simulation state or exports)
  return static_cast<std::uint64_t>(time(nullptr));
}

}  // namespace fixture
