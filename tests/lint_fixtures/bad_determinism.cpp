// Seeded violations for xlint's determinism checks (XL101-XL104).
//
// Never compiled — the tests/ glob only picks up top-level *_test.cpp.
// tests/lint_test.py runs the analyzer over this file and asserts that
// every `xlint-expect` marker fires exactly its listed rule and that
// nothing else does.
#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Record {
  std::string name;
  double weight = 0.0;
};

class LoadTable {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& [name, value] : loads_) {  // xlint-expect: XL101
      sum += value;
    }
    return sum;
  }

  double first() const {
    return loads_.begin()->second;  // xlint-expect: XL101
  }

 private:
  std::unordered_map<std::string, double> loads_;
};

class PortDirectory {
 public:
  void sort_ports() {
    std::sort(ports_.begin(), ports_.end());  // xlint-expect: XL102
  }

 private:
  std::map<Record*, int> routing_;  // xlint-expect: XL102
  std::vector<Record*> ports_;
};

inline void rank_records(std::vector<Record>& records) {
  std::sort(records.begin(), records.end(),  // xlint-expect: XL103
            [](const Record& a, const Record& b) {
              return a.weight > b.weight;
            });
}

inline unsigned wall_seed() {
  return static_cast<unsigned>(time(nullptr));  // xlint-expect: XL104
}

inline int roll() {
  return std::rand() % 6;  // xlint-expect: XL104
}

inline const char* trace_dir() {
  return std::getenv("TRACE_DIR");  // xlint-expect: XL104
}

}  // namespace fixture
