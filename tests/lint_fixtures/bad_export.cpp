// Seeded violations for the export-stability check (XL401).
// Never compiled; consumed by tests/lint_test.py.
#include <cstdint>
#include <ostream>
#include <string>

namespace fixture {

// CSV emitter streaming floats raw: iostream default formatting is
// precision- and locale-dependent, so the exported bytes drift across
// hosts. Everything float-typed must route through fmt_double (%.15g)
// or hex_double (%a).
inline void write_load_csv(std::ostream& out, double utilization,
                           std::uint64_t flits) {
  double headroom = 1.0 - utilization;
  out << "utilization," << utilization << "\n";  // xlint-expect: XL401
  out << "headroom," << headroom << "\n";        // xlint-expect: XL401
  out << "scale," << 1.5 << "\n";                // xlint-expect: XL401
  out << "flits," << flits << "\n";              // silent: integer
}

// std::to_string on a double truncates to 6 fixed digits — lossy and
// locale-adjacent.
inline std::string json_cell(double mean) {
  return std::to_string(mean);  // xlint-expect: XL401
}

}  // namespace fixture
