// Out-of-line definitions for merge_z_decl.hpp. This file deliberately
// sorts BEFORE the header that declares the class: the analyzer's
// two-pass class merge must still attach these bodies to Relay (a
// one-pass merge dropped them and false-flagged every out-of-line tick
// write as XL301). tests/lint_test.py analyzes the pair in exactly this
// order and asserts zero findings.
#include "tests/lint_fixtures/merge_z_decl.hpp"

namespace fixture {

void Relay::tick(sim::Kernel& kernel) {
  if (backlog_ > 0) {
    --backlog_;
    forward();
  }
}

void Relay::forward() { out_.write(1); }  // silent: tick -> forward

}  // namespace fixture
