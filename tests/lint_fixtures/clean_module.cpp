// Fully conforming modules, as the signal/module checks see them:
// is_idle() reads exactly the state tick() advances, every Signal write
// sits on the tick path, at most two watchers register per wire, and
// stored signal handles carry the passive-observer annotation.
// tests/lint_test.py asserts zero findings on this file.
#include <cstdint>

namespace fixture {

class Pulse : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (remaining_ > 0) {
      --remaining_;
      drive();
    }
  }

  // Quiescence is exactly "no pulses left": the same counter tick()
  // decrements.
  bool is_idle() const override { return remaining_ == 0; }

  void watch_output(sim::Module* consumer, sim::Module* observer) {
    out_.watch(consumer);
    out_.watch(observer);  // two watchers: consumer + passive observer
  }

 private:
  void drive() { out_.write(1); }  // silent: tick -> drive

  sim::Signal<int> out_;
  std::uint64_t remaining_ = 4;
};

// The sanctioned passive-observer shape: a stored handle to a wire some
// other module owns, annotated with the reason.
class Scope : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (probe_->read() != 0) ++samples_;
  }
  bool is_idle() const override { return samples_ == 0; }

 private:
  // xlint: signal-handle-ok(passive observer on an externally owned wire; uses Signal's second watcher slot)
  sim::Signal<int>* probe_ = nullptr;
  std::uint64_t samples_ = 0;
};

// An always-false idle claim is a valid (conservative) contract, but it
// reads none of the tick state, so it documents why.
class Spinner : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override { ++cycles_; }
  // xlint: idle-ok(free-running heartbeat; never quiesces by design)
  bool is_idle() const override { return false; }

 private:
  std::uint64_t cycles_ = 0;
};

// The conforming time-driven shape: the same clock-comparing tick as
// the XL203 fixture, but the wake cycle is declared via next_event(),
// so the time-leap scheduler knows exactly when to revisit it.
class Alarm : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (kernel.cycle() >= fire_at_) fired_ = true;
  }
  bool is_idle() const override { return fired_; }
  std::uint64_t next_event(std::uint64_t now) const override {
    return fired_ ? ~std::uint64_t{0} : fire_at_;
  }

 private:
  std::uint64_t fire_at_ = 100;
  bool fired_ = false;
};

// A due-tracking member is fine too once the wake is declared.
class Retry : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override {
    if (pending_ > 0 && --resend_due_ == 0) --pending_;
  }
  bool is_idle() const override { return pending_ == 0; }
  std::uint64_t next_event(std::uint64_t now) const override {
    return now + 1;  // counts down every cycle while pending
  }

 private:
  std::uint64_t resend_due_ = 8;
  std::uint64_t pending_ = 1;
};

}  // namespace fixture
