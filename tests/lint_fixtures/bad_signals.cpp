// Seeded violations for the signal-discipline checks (XL301-XL303).
// Never compiled; consumed by tests/lint_test.py.
#include <cstdint>

namespace fixture {

// Raw signal handle stored in a module outside the CutLink seam and
// without a passive-observer annotation.
class Probe : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override { last_ = wire_->read(); }
  bool is_idle() const override { return last_ == 0; }

 private:
  sim::Signal<int>* wire_;  // xlint-expect: XL303
  int last_ = 0;
};

// Drives its output wire from a configuration call that no tick path
// reaches: the write lands outside the two-phase commit.
class Driver : public sim::Module {
 public:
  void tick(sim::Kernel& kernel) override { step(); }
  bool is_idle() const override { return armed_ == false; }

  void arm(int value) {
    out_.write(value);  // xlint-expect: XL301
    armed_ = true;
  }

 private:
  void step() { out_.write(armed_ ? 1 : 0); }  // silent: tick -> step

  sim::Signal<int> out_;
  bool armed_ = false;
};

// A third watcher on one wire: Signal has exactly two slots (consumer +
// passive observer) and the third registration asserts at runtime.
class Fanout : public sim::Module {
 public:
  void attach(sim::Signal<int>& wire) {
    wire.watch(this);
    wire.watch(this);
    wire.watch(this);  // xlint-expect: XL302
  }
  void tick(sim::Kernel& kernel) override { ++beats_; }
  bool is_idle() const override { return beats_ == 0; }

 private:
  std::uint64_t beats_ = 0;
};

// Namespace-scope helper pushing a beat outside any module tick.
inline void force_flush(sim::Signal<int>& wire) {
  wire.write(0);  // xlint-expect: XL301
}

}  // namespace fixture
