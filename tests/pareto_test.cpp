// Pareto-front selection over exploration results.
#include <gtest/gtest.h>

#include "src/appgraph/explore.hpp"

namespace xpl::appgraph {
namespace {

ExplorationResult point(const char* name, double area, double power,
                        double latency) {
  ExplorationResult r;
  r.name = name;
  r.area_mm2 = area;
  r.power_mw = power;
  r.avg_latency_cycles = latency;
  return r;
}

TEST(Pareto, SinglePointIsFront) {
  const std::vector<ExplorationResult> results{point("a", 1, 1, 1)};
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0}));
}

TEST(Pareto, DominatedPointRemoved) {
  const std::vector<ExplorationResult> results{
      point("good", 1.0, 10.0, 50.0),
      point("bad", 1.5, 12.0, 60.0),  // worse everywhere
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0}));
}

TEST(Pareto, TradeoffsAllSurvive) {
  const std::vector<ExplorationResult> results{
      point("small_slow", 1.0, 10.0, 80.0),
      point("big_fast", 2.0, 20.0, 40.0),
      point("mid", 1.5, 15.0, 60.0),
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, MixedSet) {
  const std::vector<ExplorationResult> results{
      point("a", 1.0, 10.0, 80.0),   // front (smallest)
      point("b", 2.0, 20.0, 40.0),   // front (fastest)
      point("c", 2.1, 21.0, 41.0),   // dominated by b
      point("d", 1.0, 10.0, 90.0),   // dominated by a
      point("e", 1.2, 9.0, 85.0),    // front (least power)
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1, 4}));
}

TEST(Pareto, DuplicatesBothSurvive) {
  // Equal points do not dominate each other (no strict improvement).
  const std::vector<ExplorationResult> results{
      point("x", 1.0, 10.0, 50.0),
      point("y", 1.0, 10.0, 50.0),
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

}  // namespace
}  // namespace xpl::appgraph
