// Pareto-front selection over exploration results, and tie handling in
// the shared pareto_front_min primitive both selectors build on.
#include <gtest/gtest.h>

#include "src/appgraph/explore.hpp"
#include "src/sweep/pareto.hpp"

namespace xpl::appgraph {
namespace {

ExplorationResult point(const char* name, double area, double power,
                        double latency) {
  ExplorationResult r;
  r.name = name;
  r.area_mm2 = area;
  r.power_mw = power;
  r.avg_latency_cycles = latency;
  return r;
}

TEST(Pareto, SinglePointIsFront) {
  const std::vector<ExplorationResult> results{point("a", 1, 1, 1)};
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0}));
}

TEST(Pareto, DominatedPointRemoved) {
  const std::vector<ExplorationResult> results{
      point("good", 1.0, 10.0, 50.0),
      point("bad", 1.5, 12.0, 60.0),  // worse everywhere
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0}));
}

TEST(Pareto, TradeoffsAllSurvive) {
  const std::vector<ExplorationResult> results{
      point("small_slow", 1.0, 10.0, 80.0),
      point("big_fast", 2.0, 20.0, 40.0),
      point("mid", 1.5, 15.0, 60.0),
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, MixedSet) {
  const std::vector<ExplorationResult> results{
      point("a", 1.0, 10.0, 80.0),   // front (smallest)
      point("b", 2.0, 20.0, 40.0),   // front (fastest)
      point("c", 2.1, 21.0, 41.0),   // dominated by b
      point("d", 1.0, 10.0, 90.0),   // dominated by a
      point("e", 1.2, 9.0, 85.0),    // front (least power)
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1, 4}));
}

TEST(Pareto, DuplicatesBothSurvive) {
  // Equal points do not dominate each other (no strict improvement).
  const std::vector<ExplorationResult> results{
      point("x", 1.0, 10.0, 50.0),
      point("y", 1.0, 10.0, 50.0),
  };
  EXPECT_EQ(pareto_front(results), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

// pareto_front_min tie semantics: domination requires a *strict*
// improvement somewhere, so ties never eliminate each other and the
// returned indices always follow input order — the property the tuner's
// deterministic Pareto reporting rests on.

TEST(ParetoFrontMin, FullyEqualPointsAllKeptInInputOrder) {
  const std::vector<std::vector<double>> rows{
      {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}};
  EXPECT_EQ(sweep::pareto_front_min(rows),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFrontMin, TieOnOneObjectiveDoesNotDominate) {
  // b ties a on the first objective and is worse on the second: dominated.
  // c ties a everywhere except being better on the second: c dominates a.
  const std::vector<std::vector<double>> rows{
      {1.0, 5.0}, {1.0, 6.0}, {1.0, 4.0}};
  EXPECT_EQ(sweep::pareto_front_min(rows), (std::vector<std::size_t>{2}));
}

TEST(ParetoFrontMin, InputOrderIsPreservedRegardlessOfQuality) {
  // The front is {best_last, best_first} by quality, but indices come
  // back in input order — no sorting by objective sneaks in.
  const std::vector<std::vector<double>> rows{
      {2.0, 1.0}, {3.0, 3.0}, {1.0, 2.0}};
  EXPECT_EQ(sweep::pareto_front_min(rows),
            (std::vector<std::size_t>{0, 2}));
}

TEST(ParetoFrontMin, PermutedEqualSetsAgree) {
  // Shuffling equal points only permutes the (identity) index set: every
  // point survives under any input order.
  const std::vector<std::vector<double>> forward{
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 0.5}};
  const std::vector<std::vector<double>> reversed{
      {2.0, 0.5}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(sweep::pareto_front_min(forward),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(sweep::pareto_front_min(reversed),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFrontMin, SinglePointAndEmpty) {
  EXPECT_EQ(sweep::pareto_front_min({{7.0}}),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(sweep::pareto_front_min({}).empty());
}

}  // namespace
}  // namespace xpl::appgraph
