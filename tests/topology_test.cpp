// Topology structure, port numbering, generators.
#include "src/topology/topology.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"

namespace xpl::topology {
namespace {

TEST(Topology, BuildSmall) {
  Topology t;
  const auto a = t.add_switch("a");
  const auto b = t.add_switch("b");
  t.add_duplex(a, b);
  const auto ini = t.attach_initiator(a);
  const auto tgt = t.attach_target(b);
  EXPECT_EQ(t.num_switches(), 2u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.num_nis(), 2u);
  EXPECT_TRUE(t.ni(ini).initiator);
  EXPECT_FALSE(t.ni(tgt).initiator);
  t.validate();
}

TEST(Topology, PortNumberingLinksBeforeNis) {
  Topology t;
  const auto a = t.add_switch();
  const auto b = t.add_switch();
  const auto c = t.add_switch();
  t.add_duplex(a, b);  // links 0 (a->b), 1 (b->a)
  t.add_duplex(b, c);  // links 2 (b->c), 3 (c->b)
  const auto ni = t.attach_initiator(b);

  const auto outs = t.output_ports(b);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], (PortRef{PortRef::Kind::kLink, 1}));  // b->a
  EXPECT_EQ(outs[1], (PortRef{PortRef::Kind::kLink, 2}));  // b->c
  EXPECT_EQ(outs[2], (PortRef{PortRef::Kind::kNi, ni}));

  const auto ins = t.input_ports(b);
  ASSERT_EQ(ins.size(), 3u);
  EXPECT_EQ(ins[0], (PortRef{PortRef::Kind::kLink, 0}));  // a->b
  EXPECT_EQ(ins[1], (PortRef{PortRef::Kind::kLink, 3}));  // c->b
  EXPECT_EQ(ins[2], (PortRef{PortRef::Kind::kNi, ni}));
}

TEST(Topology, PortIndexLookup) {
  Topology t;
  const auto a = t.add_switch();
  const auto b = t.add_switch();
  t.add_duplex(a, b);
  const auto ni = t.attach_target(a);
  EXPECT_EQ(t.output_index(a, {PortRef::Kind::kNi, ni}), 1u);
  EXPECT_EQ(t.output_index(a, {PortRef::Kind::kLink, 0}), 0u);
  EXPECT_EQ(t.output_index(a, {PortRef::Kind::kLink, 99}), Topology::npos);
}

TEST(Topology, SelfLoopRejected) {
  Topology t;
  const auto a = t.add_switch();
  EXPECT_THROW(t.add_link(a, a), Error);
}

TEST(Topology, ValidateCatchesDisconnected) {
  Topology t;
  const auto a = t.add_switch();
  const auto b = t.add_switch();
  const auto c = t.add_switch();
  t.add_duplex(a, b);
  t.attach_initiator(a);
  t.attach_target(c);  // c has no links
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, InitiatorAndTargetLists) {
  Topology t;
  const auto a = t.add_switch();
  const auto b = t.add_switch();
  t.add_duplex(a, b);
  t.attach_initiator(a);
  t.attach_target(a);
  t.attach_initiator(b);
  t.attach_target(b);
  EXPECT_EQ(t.initiator_ids(), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(t.target_ids(), (std::vector<std::uint32_t>{1, 3}));
}

TEST(Generators, MeshShape) {
  const auto t = make_mesh(3, 4, NiPlan::uniform(12, 1, 1));
  EXPECT_EQ(t.num_switches(), 12u);
  // Grid links: 2*(2*4 + 3*3) = 34 directed.
  EXPECT_EQ(t.num_links(), 34u);
  EXPECT_EQ(t.num_nis(), 24u);
  t.validate();
  // Coordinates for XY routing.
  EXPECT_EQ(t.switch_node(0).x, 0);
  EXPECT_EQ(t.switch_node(0).y, 0);
  EXPECT_EQ(t.switch_node(5).x, 2);
  EXPECT_EQ(t.switch_node(5).y, 1);
}

TEST(Generators, MeshCornerAndCenterRadix) {
  const auto t = make_mesh(3, 3, NiPlan::uniform(9, 1, 0));
  // Corner: 2 links + 1 NI = 3; center: 4 links + 1 NI = 5.
  EXPECT_EQ(t.output_ports(0).size(), 3u);
  EXPECT_EQ(t.output_ports(4).size(), 5u);
  EXPECT_EQ(t.max_radix_out(), 5u);
}

TEST(Generators, CmeshConcentratesNis) {
  const auto t = make_cmesh(4, 2, 4);
  EXPECT_EQ(t.num_switches(), 8u);
  // Same grid links as a 4x2 mesh: 2*(3*2 + 4*1) = 20 directed.
  EXPECT_EQ(t.num_links(), 20u);
  // Concentration 4: 4 initiator + 4 target NIs per switch.
  EXPECT_EQ(t.num_nis(), 64u);
  t.validate();
  // Coordinates survive for XY routing.
  EXPECT_EQ(t.switch_node(5).x, 1);
  EXPECT_EQ(t.switch_node(5).y, 1);
  // Default one relay stage per grid link (fat tiles; also what makes
  // partitioned simulation run 2-cycle lookahead epochs).
  for (std::uint32_t l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(t.link(l).stages, 1u);
  }
  EXPECT_THROW(make_cmesh(4, 2, 0), Error);
}

TEST(Generators, TorusAddsWrapLinks) {
  const auto t = make_torus(3, 3, NiPlan::uniform(9, 1, 0));
  EXPECT_EQ(t.num_switches(), 9u);
  // Every switch has degree 4 in a torus: 9*4 = 36 directed links.
  EXPECT_EQ(t.num_links(), 36u);
  t.validate();
}

TEST(Generators, Ring) {
  const auto t = make_ring(5, NiPlan::uniform(5, 1, 1));
  EXPECT_EQ(t.num_switches(), 5u);
  EXPECT_EQ(t.num_links(), 10u);
  t.validate();
}

TEST(Generators, StarHubRadix) {
  const auto t = make_star(4, NiPlan::uniform(5, 1, 0));
  EXPECT_EQ(t.num_switches(), 5u);
  // Hub: 4 links out + 1 NI.
  EXPECT_EQ(t.output_ports(0).size(), 5u);
  t.validate();
}

TEST(Generators, Spidergon) {
  const auto t = make_spidergon(6, NiPlan::uniform(6, 1, 0));
  EXPECT_EQ(t.num_switches(), 6u);
  // Ring 12 + cross 6 directed links.
  EXPECT_EQ(t.num_links(), 18u);
  t.validate();
  EXPECT_THROW(make_spidergon(5, NiPlan::uniform(5, 1, 0)), Error);
}

TEST(Generators, BinaryTree) {
  const auto t = make_binary_tree(3, NiPlan::uniform(7, 1, 0));
  EXPECT_EQ(t.num_switches(), 7u);
  EXPECT_EQ(t.num_links(), 12u);
  t.validate();
}

TEST(Generators, PaperCaseStudyInventory) {
  const auto t = make_paper_case_study();
  EXPECT_EQ(t.num_switches(), 12u);
  // The paper: 8 processors, 11 slaves on a 3x4 mesh.
  EXPECT_EQ(t.initiator_ids().size(), 8u);
  EXPECT_EQ(t.target_ids().size(), 11u);
  t.validate();
  // The two switch shapes the paper reports: 4x4 and 6x4.
  std::size_t max_in = t.max_radix_in();
  std::size_t max_out = t.max_radix_out();
  EXPECT_EQ(max_in, 6u);
  EXPECT_EQ(max_out, 6u);
}

TEST(Generators, DegenerateDimensionsRejected) {
  EXPECT_THROW(make_mesh(0, 3, NiPlan{}), Error);
  EXPECT_THROW(make_ring(2, NiPlan{}), Error);
  EXPECT_THROW(make_torus(2, 3, NiPlan{}), Error);
}

}  // namespace
}  // namespace xpl::topology
