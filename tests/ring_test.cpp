// Unit tests for the hot-path ring-buffer FIFO (common/ring.hpp).
#include "src/common/ring.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "src/common/rng.hpp"

namespace xpl {
namespace {

TEST(Ring, StartsEmpty) {
  Ring<int> r(4);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_GE(r.capacity(), 4u);
}

TEST(Ring, FifoOrder) {
  Ring<int> r(4);
  for (int i = 0; i < 4; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(Ring, WrapsAroundWithoutReallocation) {
  Ring<int> r(4);
  const std::size_t cap = r.capacity();
  int next = 0;
  // Push/pop through several times the capacity: head wraps, capacity
  // must never change (this is the steady-state hot path).
  for (int round = 0; round < 50; ++round) {
    r.push_back(next++);
    r.push_back(next++);
    EXPECT_EQ(r.front(), next - 2);
    r.pop_front();
    r.pop_front();
  }
  EXPECT_EQ(r.capacity(), cap);
  EXPECT_TRUE(r.empty());
}

TEST(Ring, IndexingIsFifoRelative) {
  Ring<int> r(8);
  for (int i = 0; i < 5; ++i) r.push_back(10 + i);
  r.pop_front();
  r.pop_front();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 12);
  EXPECT_EQ(r[1], 13);
  EXPECT_EQ(r[2], 14);
  EXPECT_EQ(r.back(), 14);
  r[1] = 99;
  EXPECT_EQ(r[1], 99);
}

TEST(Ring, GrowsPreservingOrderWhenFull) {
  Ring<int> r;  // capacity 0: first push allocates
  for (int i = 0; i < 100; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
}

TEST(Ring, GrowsPreservingOrderWhenWrapped) {
  Ring<std::string> r(4);
  const std::size_t cap = r.capacity();
  // Wrap the head first, then overfill so regrow must unwrap correctly.
  for (std::size_t i = 0; i < cap; ++i) r.push_back("x");
  r.pop_front();
  r.pop_front();
  std::deque<std::string> model(cap - 2, "x");
  for (int i = 0; i < 20; ++i) {
    const std::string v = "v" + std::to_string(i);
    r.push_back(v);
    model.push_back(v);
  }
  ASSERT_EQ(r.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) EXPECT_EQ(r[i], model[i]);
}

TEST(Ring, MatchesDequeUnderRandomOps) {
  Ring<int> r(2);
  std::deque<int> model;
  Rng rng(1234);
  int next = 0;
  for (int step = 0; step < 10000; ++step) {
    if (model.empty() || rng.chance(0.55)) {
      r.push_back(next);
      model.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(r.front(), model.front());
      r.pop_front();
      model.pop_front();
    }
    ASSERT_EQ(r.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(r.back(), model.back());
      const std::size_t mid = model.size() / 2;
      ASSERT_EQ(r[mid], model[mid]);
    }
  }
}

TEST(Ring, ClearResets) {
  Ring<int> r(4);
  r.push_back(1);
  r.push_back(2);
  r.clear();
  EXPECT_TRUE(r.empty());
  r.push_back(7);
  EXPECT_EQ(r.front(), 7);
}

TEST(Ring, MoveOnlyFriendly) {
  // The flit path moves payload-bearing values through rings.
  Ring<std::unique_ptr<int>> r(2);
  r.push_back(std::make_unique<int>(5));
  r.emplace_back(new int(6));
  auto p = std::move(r.front());
  r.pop_front();
  EXPECT_EQ(*p, 5);
  EXPECT_EQ(*r.front(), 6);
}

}  // namespace
}  // namespace xpl
