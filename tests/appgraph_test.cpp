// Application graphs, mapping quality, mapped-NoC construction.
#include <gtest/gtest.h>

#include "src/appgraph/core_graph.hpp"
#include "src/appgraph/explore.hpp"
#include "src/appgraph/mapping.hpp"
#include "src/common/error.hpp"
#include "src/topology/generators.hpp"

namespace xpl::appgraph {
namespace {

TEST(CoreGraph, BuildAndQuery) {
  CoreGraph g("toy");
  const auto a = g.add_core("a");
  const auto b = g.add_core("b");
  const auto c = g.add_core("c");
  g.add_flow(a, b, 100);
  g.add_flow(b, c, 50);
  EXPECT_EQ(g.num_cores(), 3u);
  EXPECT_TRUE(g.sends(a));
  EXPECT_FALSE(g.receives(a));
  EXPECT_TRUE(g.sends(b));
  EXPECT_TRUE(g.receives(b));
  EXPECT_FALSE(g.sends(c));
  EXPECT_TRUE(g.receives(c));
  EXPECT_DOUBLE_EQ(g.total_bandwidth(), 150.0);
}

TEST(CoreGraph, RejectsBadFlows) {
  CoreGraph g;
  const auto a = g.add_core("a");
  const auto b = g.add_core("b");
  EXPECT_THROW(g.add_flow(a, a, 10), Error);
  EXPECT_THROW(g.add_flow(a, b, 0), Error);
  EXPECT_THROW(g.add_flow(a, 9, 10), Error);
}

TEST(Benchmarks, ShapesMatchLiterature) {
  for (const auto& g : {mpeg4_decoder(), vopd(), mwd()}) {
    EXPECT_EQ(g.num_cores(), 12u) << g.name();
    EXPECT_GE(g.flows().size(), 10u) << g.name();
    EXPECT_GT(g.total_bandwidth(), 500.0) << g.name();
    // Every core participates.
    for (std::uint32_t c = 0; c < g.num_cores(); ++c) {
      EXPECT_TRUE(g.sends(c) || g.receives(c))
          << g.name() << " core " << g.core_name(c);
    }
  }
}

TEST(Mapping, DistancesSymmetricOnMesh) {
  const auto t = topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 0, 0));
  const auto dist = switch_distances(t);
  EXPECT_EQ(dist[0][8], 4u);  // corner to corner
  EXPECT_EQ(dist[8][0], 4u);
  EXPECT_EQ(dist[4][4], 0u);
  EXPECT_EQ(dist[0][1], 1u);
}

TEST(Mapping, CostCountsBandwidthTimesHops) {
  CoreGraph g;
  const auto a = g.add_core("a");
  const auto b = g.add_core("b");
  g.add_flow(a, b, 100);
  const auto t = topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 0, 0));
  const auto dist = switch_distances(t);
  Mapping colocated{{0, 0}};
  Mapping adjacent{{0, 1}};
  Mapping diagonal{{0, 3}};
  EXPECT_DOUBLE_EQ(mapping_cost(g, dist, colocated), 100.0);
  EXPECT_DOUBLE_EQ(mapping_cost(g, dist, adjacent), 200.0);
  EXPECT_DOUBLE_EQ(mapping_cost(g, dist, diagonal), 300.0);
}

TEST(Mapping, GreedyRespectsCapacity) {
  const auto g = vopd();
  const auto t = topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 0, 0));
  const Mapping m = greedy_map(g, t, 1);
  std::vector<int> load(12, 0);
  for (const auto s : m.core_to_switch) ++load[s];
  for (const int l : load) EXPECT_LE(l, 1);
}

TEST(Mapping, GreedyBeatsWorstCase) {
  const auto g = vopd();
  const auto t = topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 0, 0));
  const auto dist = switch_distances(t);
  const Mapping greedy = greedy_map(g, t, 1);
  // Identity placement as a naive baseline.
  Mapping naive;
  for (std::uint32_t c = 0; c < g.num_cores(); ++c) {
    naive.core_to_switch.push_back(c);
  }
  EXPECT_LE(mapping_cost(g, dist, greedy), mapping_cost(g, dist, naive));
}

TEST(Mapping, AnnealNeverWorsens) {
  const auto g = mpeg4_decoder();
  const auto t = topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0));
  const auto dist = switch_distances(t);
  Rng rng(5);
  const Mapping greedy = greedy_map(g, t, 1);
  const Mapping annealed = anneal_map(g, t, greedy, rng, 5000, 1);
  EXPECT_LE(mapping_cost(g, dist, annealed),
            mapping_cost(g, dist, greedy) + 1e-9);
  std::vector<int> load(12, 0);
  for (const auto s : annealed.core_to_switch) ++load[s];
  for (const int l : load) EXPECT_LE(l, 1);
}

TEST(Mapping, TooSmallTopologyRejected) {
  const auto g = vopd();
  const auto t = topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 0, 0));
  EXPECT_THROW(greedy_map(g, t, 1), Error);
}

TEST(MappedNoc, AttachesNisPerRole) {
  CoreGraph g;
  const auto a = g.add_core("a");  // sends only
  const auto b = g.add_core("b");  // sends and receives
  const auto c = g.add_core("c");  // receives only
  g.add_flow(a, b, 10);
  g.add_flow(b, c, 20);
  const auto base = topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 0, 0));
  const MappedNoc mapped =
      build_mapped_topology(g, base, Mapping{{0, 1, 2}});
  EXPECT_EQ(mapped.topo.initiator_ids().size(), 2u);  // a, b
  EXPECT_EQ(mapped.topo.target_ids().size(), 2u);     // b, c
  EXPECT_EQ(mapped.initiator_index[a], 0);
  EXPECT_EQ(mapped.initiator_index[b], 1);
  EXPECT_EQ(mapped.initiator_index[c], -1);
  EXPECT_EQ(mapped.target_index[a], -1);
  EXPECT_EQ(mapped.target_index[b], 0);
  EXPECT_EQ(mapped.target_index[c], 1);
  // Weight matrix mirrors the flows.
  EXPECT_DOUBLE_EQ(mapped.weights[0][0], 10.0);  // a -> b
  EXPECT_DOUBLE_EQ(mapped.weights[1][1], 20.0);  // b -> c
  EXPECT_DOUBLE_EQ(mapped.weights[0][1], 0.0);
  mapped.topo.validate();
}

TEST(MappedNoc, RejectsBaseWithNis) {
  CoreGraph g;
  g.add_core("a");
  const auto base =
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 0));
  EXPECT_THROW(build_mapped_topology(g, base, Mapping{{0}}), Error);
}

TEST(Explore, DefaultCandidatesCoverTopologyFamilies) {
  const auto candidates = default_candidates(12);
  EXPECT_GE(candidates.size(), 4u);
  for (const auto& c : candidates) {
    EXPECT_GE(c.topo.num_switches() *
                  std::max<std::size_t>(
                      1, (12 + c.topo.num_switches() - 1) /
                             c.topo.num_switches()),
              12u)
        << c.name;
  }
}

TEST(Explore, ScoresEveryCandidate) {
  const auto g = mwd();
  ExploreOptions options;
  options.anneal_iterations = 2000;  // keep the test quick
  options.sim_cycles = 3000;
  options.net.target_window = 1 << 12;
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"mesh_3x4",
       topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 0, 0))});
  candidates.push_back(
      {"star_5",
       topology::make_star(5, topology::NiPlan::uniform(6, 0, 0))});
  const auto results = explore(g, candidates, options);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_GT(r.area_mm2, 0.0) << r.name;
    EXPECT_GT(r.power_mw, 0.0) << r.name;
    EXPECT_GT(r.fmax_mhz, 0.0) << r.name;
    EXPECT_GT(r.mapping_cost, 0.0) << r.name;
    EXPECT_GT(r.avg_latency_cycles, 0.0) << r.name;
  }
}

}  // namespace
}  // namespace xpl::appgraph
