// Synthesis model: structural scaling laws and calibration anchors.
#include <gtest/gtest.h>

#include <cmath>

#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

namespace xpl::synth {
namespace {

switchlib::SwitchConfig switch_config(std::size_t n_in, std::size_t n_out,
                                      std::size_t flit_width) {
  switchlib::SwitchConfig cfg;
  cfg.num_inputs = n_in;
  cfg.num_outputs = n_out;
  cfg.flit_width = flit_width;
  cfg.port_bits = 3;
  // Whole hop selectors only (SwitchConfig::validate()'s rule).
  cfg.route_bits =
      std::min<std::size_t>(24, flit_width / cfg.port_bits * cfg.port_bits);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

ni::InitiatorConfig ini_config(std::size_t flit_width) {
  ni::InitiatorConfig cfg;
  cfg.format.flit_width = flit_width;
  cfg.format.beat_width = 32;
  cfg.format.header.max_hops = std::min<std::size_t>(8, flit_width / 3);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

ni::TargetConfig tgt_config(std::size_t flit_width) {
  ni::TargetConfig cfg;
  cfg.format.flit_width = flit_width;
  cfg.format.beat_width = 32;
  cfg.format.header.max_hops = std::min<std::size_t>(8, flit_width / 3);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

TEST(Netlist, PrimitivesArePositiveAndMonotone) {
  EXPECT_GT(fifo(4, 32).flops, fifo(2, 32).flops);
  EXPECT_GT(fifo(4, 64).flops, fifo(4, 32).flops);
  EXPECT_GT(mux(32, 6).combinational, mux(32, 4).combinational);
  EXPECT_GT(crc_logic(64, 8).combinational, crc_logic(32, 8).combinational);
  EXPECT_GT(rr_arbiter(8).combinational, rr_arbiter(4).combinational);
  EXPECT_GT(lut_rom(16, 30).combinational, lut_rom(4, 30).combinational);
  EXPECT_EQ(mux(32, 1).combinational, 0.0);
  EXPECT_EQ(crc_logic(32, 0).combinational, 0.0);
}

TEST(SwitchNetlist, GrowsWithFlitWidth) {
  double prev = 0;
  for (const std::size_t w : {16u, 32u, 64u, 128u}) {
    const auto n = build_switch_netlist(switch_config(4, 4, w));
    const double gates = n.combinational + n.flops * 5.2;
    EXPECT_GT(gates, prev) << "width " << w;
    prev = gates;
  }
}

TEST(SwitchNetlist, BuffersDominate) {
  // The paper's switch is buffer-heavy (output queued + retransmission);
  // flops must dominate the gate count at 32 bits.
  const auto n = build_switch_netlist(switch_config(4, 4, 32));
  EXPECT_GT(n.flops * 5.2, n.combinational);
}

TEST(SwitchNetlist, GrowsWithRadix) {
  const auto a = build_switch_netlist(switch_config(4, 4, 32));
  const auto b = build_switch_netlist(switch_config(6, 4, 32));
  const auto c = build_switch_netlist(switch_config(8, 8, 32));
  EXPECT_GT(b.flops + b.combinational, a.flops + a.combinational);
  EXPECT_GT(c.flops + c.combinational, b.flops + b.combinational);
}

TEST(SwitchNetlist, ExtraPipelineCostsFlops) {
  auto cfg2 = switch_config(4, 4, 32);
  auto cfg7 = switch_config(4, 4, 32);
  cfg7.extra_pipeline = 5;
  EXPECT_GT(build_switch_netlist(cfg7).flops,
            build_switch_netlist(cfg2).flops);
}

TEST(NiNetlists, GrowWithFlitWidth) {
  double prev_i = 0;
  double prev_t = 0;
  for (const std::size_t w : {16u, 32u, 64u, 128u}) {
    const auto i = build_initiator_ni_netlist(ini_config(w), 8);
    const auto t = build_target_ni_netlist(tgt_config(w), 8);
    const double gi = i.combinational + i.flops * 5.2;
    const double gt = t.combinational + t.flops * 5.2;
    EXPECT_GT(gi, prev_i);
    EXPECT_GT(gt, prev_t);
    prev_i = gi;
    prev_t = gt;
  }
}

TEST(NiNetlists, LutScalesWithPeers) {
  const auto few = build_initiator_ni_netlist(ini_config(32), 2);
  const auto many = build_initiator_ni_netlist(ini_config(32), 32);
  EXPECT_GT(many.combinational, few.combinational);
}

TEST(Estimator, NominalBelowMaxFmax) {
  Estimator est;
  for (double levels : {10.0, 15.0, 20.0}) {
    EXPECT_LT(est.nominal_fmax_mhz(levels), est.max_fmax_mhz(levels));
    EXPECT_GT(est.nominal_fmax_mhz(levels), 0.0);
  }
}

TEST(Estimator, EffortMultiplierShape) {
  Estimator est;
  const double levels = 18.0;
  const double nominal = est.nominal_fmax_mhz(levels);
  const double fmax = est.max_fmax_mhz(levels);
  // Relaxed timing: multiplier 1.
  EXPECT_DOUBLE_EQ(est.effort_multiplier(levels, nominal * 0.5), 1.0);
  EXPECT_DOUBLE_EQ(est.effort_multiplier(levels, nominal), 1.0);
  // Tightening: monotone growth up to 1 + penalty at fmax.
  double prev = 1.0;
  for (double f = nominal * 1.05; f < fmax; f += (fmax - nominal) / 8) {
    const double m = est.effort_multiplier(levels, f);
    EXPECT_GE(m, prev);
    prev = m;
  }
  EXPECT_LE(prev, 1.0 + est.tech().effort_area_penalty + 1e-9);
  // Beyond fmax: infeasible.
  EXPECT_FALSE(std::isfinite(est.effort_multiplier(levels, fmax * 1.05)));
}

TEST(Estimator, PowerScalesWithFrequency) {
  Estimator est;
  const auto n = build_switch_netlist(switch_config(4, 4, 32));
  const double levels = switch_logic_levels(switch_config(4, 4, 32));
  const auto e500 = est.estimate(n, levels, 500.0);
  const auto e900 = est.estimate(n, levels, 900.0);
  EXPECT_GT(e900.power_mw, 1.6 * e500.power_mw);
}

TEST(Estimator, InfeasibleTargetFlagged) {
  Estimator est;
  const auto n = build_switch_netlist(switch_config(4, 4, 32));
  const auto e = est.estimate(n, 18.0, 10000.0);
  EXPECT_FALSE(e.feasible);
}

// ---- Calibration anchors from the paper (DESIGN.md §5). These pin the
// model to the published numbers; loosen only with a documented
// recalibration.

TEST(Calibration, Switch4x4At32BitNearPaper) {
  Estimator est;
  const auto cfg = switch_config(4, 4, 32);
  const auto e = est.estimate(build_switch_netlist(cfg),
                              switch_logic_levels(cfg), 1000.0);
  EXPECT_TRUE(e.feasible) << "4x4 32-bit must close 1 GHz";
  EXPECT_GT(e.area_mm2, 0.08);
  EXPECT_LT(e.area_mm2, 0.22);
}

TEST(Calibration, Switch6x4SlowerThan4x4) {
  Estimator est;
  const auto cfg44 = switch_config(4, 4, 32);
  const auto cfg64 = switch_config(6, 4, 32);
  const double f44 = est.max_fmax_mhz(switch_logic_levels(cfg44));
  const double f64 = est.max_fmax_mhz(switch_logic_levels(cfg64));
  EXPECT_GT(f44, f64);
  // Paper: 6x4 switches close 875-980 MHz.
  EXPECT_GT(f64, 875.0);
}

TEST(Calibration, FreqAreaTradeoffSpansPaperRange) {
  // 32-bit 5x5 switch (figure F6): ~0.10 mm2 relaxed, rising steeply as
  // the clock target approaches the ceiling; the synthesized (macro)
  // flow tops out around 1 GHz, full custom reaches ~1.5 GHz.
  Estimator est;
  const auto cfg = switch_config(5, 5, 32);
  const auto n = build_switch_netlist(cfg);
  const double levels = switch_logic_levels(cfg);
  const auto relaxed = est.estimate(n, levels, 200.0);
  const double fmax = est.max_fmax_mhz(levels);
  const auto tight = est.estimate(n, levels, fmax * 0.999);
  EXPECT_GT(relaxed.area_mm2, 0.06);
  EXPECT_LT(relaxed.area_mm2, 0.16);
  EXPECT_GT(tight.area_mm2 / relaxed.area_mm2, 1.4);
  EXPECT_LT(tight.area_mm2 / relaxed.area_mm2, 1.9);
  EXPECT_GT(fmax, 900.0);
  EXPECT_LT(fmax, 1150.0);
  const double fc = est.full_custom_fmax_mhz(levels);
  EXPECT_GT(fc, 1300.0);
  EXPECT_LT(fc, 1750.0);
  // Full custom packs denser at the same relaxed target.
  const auto fc_relaxed = est.estimate_full_custom(n, levels, 200.0);
  EXPECT_LT(fc_relaxed.area_mm2, relaxed.area_mm2);
}

TEST(Calibration, InitiatorNiNearPaper) {
  Estimator est;
  const auto cfg = ini_config(32);
  const auto e = est.estimate(build_initiator_ni_netlist(cfg, 11),
                              initiator_ni_logic_levels(cfg), 1000.0);
  EXPECT_TRUE(e.feasible) << "NI must close 1 GHz";
  EXPECT_GT(e.area_mm2, 0.02);
  EXPECT_LT(e.area_mm2, 0.12);
}

TEST(Calibration, PowerPlausibleAtGigahertz) {
  Estimator est;
  const auto cfg = switch_config(4, 4, 32);
  const auto e = est.estimate(build_switch_netlist(cfg),
                              switch_logic_levels(cfg), 1000.0);
  // 130 nm NoC switch at 1 GHz: tens of mW.
  EXPECT_GT(e.power_mw, 3.0);
  EXPECT_LT(e.power_mw, 80.0);
}

}  // namespace
}  // namespace xpl::synth
