// Sweep-engine integration of the workload layer: app-benchmark and
// burstiness/warmup axes parse, round-trip canonically, and keep the
// campaign determinism contract (jobs=1 vs jobs=8 byte-identical).
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {
namespace {

/// App-workload campaign: 2 apps x 2 burstiness x 1 rate on a 4x3 mesh.
SweepSpec app_campaign() {
  SweepSpec spec;
  spec.name = "apps";
  spec.seed = 5;
  spec.sim_cycles = 400;
  spec.drain_cycles = 8000;
  spec.topologies = {"mesh"};
  spec.widths = {4};
  spec.heights = {3};
  spec.flit_widths = {32};
  spec.fifo_depths = {4};
  spec.patterns = {"app:mpeg4", "app:vopd"};
  spec.warmups = {100};
  spec.burstinesses = {0.0, 0.6};
  spec.injection_rates = {0.05};
  return spec;
}

TEST(WorkloadSweep, ParsesAppAndBurstAxes) {
  const SweepSpec spec = parse_sweep(
      "sweep s\n"
      "cycles 500\n"
      "traffic app:mpeg4 uniform\n"  // `traffic` aliases `pattern`
      "warmup 0 100\n"
      "burstiness 0 0.5 0.9\n");
  EXPECT_EQ(spec.patterns,
            (std::vector<std::string>{"app:mpeg4", "uniform"}));
  EXPECT_EQ(spec.warmups, (std::vector<std::size_t>{0, 100}));
  EXPECT_EQ(spec.burstinesses, (std::vector<double>{0.0, 0.5, 0.9}));
  EXPECT_EQ(spec.grid_size(), 2u * 2u * 3u);

  const SweepPoint p = spec.point(0);
  EXPECT_EQ(p.app, "mpeg4");
  EXPECT_EQ(p.traffic.pattern, traffic::Pattern::kWeighted);
  EXPECT_EQ(p.pattern_label(), "app:mpeg4");
}

TEST(WorkloadSweep, RejectsBadAxisValues) {
  EXPECT_THROW(parse_sweep("pattern app:doom\n"), Error);
  EXPECT_THROW(parse_sweep("burstiness 1.0\ncycles 100\n"), Error);
  EXPECT_THROW(parse_sweep("cycles 100\nwarmup 100\n"), Error);
}

TEST(WorkloadSweep, CanonicalFormRoundTrips) {
  const SweepSpec spec = app_campaign();
  const std::string canonical = write_sweep(spec);
  // New axes appear in the canonical form and survive a round trip.
  EXPECT_NE(canonical.find("pattern app:mpeg4 app:vopd"),
            std::string::npos);
  EXPECT_NE(canonical.find("warmup 100"), std::string::npos);
  EXPECT_NE(canonical.find("burstiness 0 0.6"), std::string::npos);
  EXPECT_EQ(write_sweep(parse_sweep(canonical)), canonical);
}

TEST(WorkloadSweep, DefaultedAxesKeepLegacyGridAndSeeds) {
  // A spec that never mentions warmup/burstiness must resolve the same
  // grid cells — and therefore the same derived seeds — as before the
  // axes existed, so old campaigns stay bit-identical.
  SweepSpec spec;
  spec.topologies = {"mesh", "ring"};
  spec.widths = {2, 4};
  spec.injection_rates = {0.02, 0.08};
  EXPECT_EQ(spec.grid_size(), 8u);
  const SweepPoint p = spec.point(5);
  EXPECT_EQ(p.net.seed, derive_seed(spec.seed, 5 * 2 + 0));
  EXPECT_EQ(p.traffic.seed, derive_seed(spec.seed, 5 * 2 + 1));
  EXPECT_EQ(p.warmup, 0u);
  EXPECT_EQ(p.traffic.burstiness, 0.0);
}

TEST(WorkloadSweep, AppCampaignBitIdenticalAcrossJobCounts) {
  const SweepSpec spec = app_campaign();
  const ResultTable serial = SweepRunner(1).run(spec);
  const ResultTable parallel = SweepRunner(8).run(spec);
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(serial.num_ok(), 4u);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  // App points actually moved weighted traffic inside the window.
  for (const auto& r : serial.rows()) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.transactions, 0u);
  }
  // The exports carry the workload columns.
  EXPECT_NE(serial.to_csv().find("app:mpeg4"), std::string::npos);
  EXPECT_NE(serial.to_csv().find(",burstiness,warmup,"),
            std::string::npos);
}

TEST(WorkloadSweep, BurstinessChangesTheScheduleNotTheLoad) {
  // Same seed and mean rate: the bursty run must produce a different
  // transaction schedule (different results) while both simulate fine.
  SweepSpec spec = app_campaign();
  spec.patterns = {"app:mpeg4"};
  spec.burstinesses = {0.0};
  const ResultTable smooth = SweepRunner(1).run(spec);
  spec.burstinesses = {0.8};
  const ResultTable bursty = SweepRunner(1).run(spec);
  ASSERT_TRUE(smooth.row(0).ok) << smooth.row(0).error;
  ASSERT_TRUE(bursty.row(0).ok) << bursty.row(0).error;
  EXPECT_NE(smooth.row(0).transactions, 0u);
  EXPECT_NE(bursty.row(0).transactions, 0u);
  EXPECT_NE(smooth.to_csv(), bursty.to_csv());
}

}  // namespace
}  // namespace xpl::sweep
