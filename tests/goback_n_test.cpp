// ACK/nACK go-back-N protocol: lossless in-order delivery over unreliable
// pipelined links, flow control, retransmission accounting.
#include "src/link/goback_n.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "src/common/rng.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::link {
namespace {

// Streams `total` numbered flits through a GoBackNSender.
class TestSender : public sim::Module {
 public:
  TestSender(LinkWires wires, const ProtocolConfig& cfg, std::size_t total)
      : sim::Module("sender"), tx_(wires, cfg), total_(total) {}

  void tick(sim::Kernel&) override {
    tx_.begin_cycle();
    if (next_ < total_ && tx_.can_accept()) {
      Flit f(BitVector(32, next_ & 0xFFFFFFFF), /*head=*/next_ == 0,
             /*tail=*/next_ + 1 == total_);
      // Treat the whole stream as one long packet for simplicity.
      f.head = true;
      f.tail = true;
      f.payload = BitVector(32, next_ & 0xFFFFFFFF);
      tx_.accept(std::move(f));
      ++next_;
    }
    tx_.end_cycle();
  }

  bool done() const { return next_ == total_ && tx_.idle(); }
  const GoBackNSender& tx() const { return tx_; }

 private:
  GoBackNSender tx_;
  std::size_t next_ = 0;
  std::size_t total_;
};

// Receives flits with a configurable stall probability (exercises the
// flow-control nACK path) and records payloads.
class TestReceiver : public sim::Module {
 public:
  TestReceiver(LinkWires wires, const ProtocolConfig& cfg, double stall,
               std::uint64_t seed)
      : sim::Module("receiver"), rx_(wires, cfg), stall_(stall), rng_(seed) {}

  void tick(sim::Kernel&) override {
    const bool can_take = !rng_.chance(stall_);
    if (auto flit = rx_.begin_cycle(can_take)) {
      values_.push_back(flit->payload.to_u64());
    }
    rx_.end_cycle();
  }

  const std::vector<std::uint64_t>& values() const { return values_; }
  const GoBackNReceiver& rx() const { return rx_; }

 private:
  GoBackNReceiver rx_;
  double stall_;
  Rng rng_;
  std::vector<std::uint64_t> values_;
};

struct Harness {
  sim::Kernel kernel;
  LinkWires up;
  LinkWires down;
  PipelinedLink link;
  TestSender sender;
  TestReceiver receiver;

  Harness(std::size_t total, std::size_t stages, double ber, double stall,
          std::uint64_t seed = 3)
      : up(LinkWires::make(kernel)),
        down(LinkWires::make(kernel)),
        link("link", up, down,
             PipelinedLink::Config{stages, ber, seed}),
        sender(up, ProtocolConfig::for_link(stages), total),
        receiver(down, ProtocolConfig::for_link(stages), stall, seed + 1) {
    kernel.add_module(sender);
    kernel.add_module(link);
    kernel.add_module(receiver);
  }

  void run_to_done(std::size_t max_cycles) {
    kernel.run_until([&] { return sender.done(); }, max_cycles);
  }

  void expect_all_delivered(std::size_t total) {
    ASSERT_EQ(receiver.values().size(), total);
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(receiver.values()[i], i) << "out of order at " << i;
    }
  }
};

TEST(ProtocolConfig, ForLinkSizesWindowToRoundTrip) {
  for (std::size_t stages : {0u, 1u, 4u, 8u}) {
    const auto cfg = ProtocolConfig::for_link(stages);
    EXPECT_GE(cfg.window, 2 * (stages + 1));
    EXPECT_GT(std::size_t{1} << cfg.seq_bits, cfg.window);
  }
}

TEST(ProtocolConfig, ValidationCatchesBadSeqSpace) {
  ProtocolConfig cfg;
  cfg.window = 8;
  cfg.seq_bits = 3;  // space 8 == window: illegal
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(GoBackN, CleanLinkDeliversEverything) {
  Harness h(100, 0, 0.0, 0.0);
  h.run_to_done(2000);
  EXPECT_TRUE(h.sender.done());
  h.expect_all_delivered(100);
  EXPECT_EQ(h.sender.tx().retransmissions(), 0u);
  EXPECT_EQ(h.receiver.rx().crc_rejections(), 0u);
}

TEST(GoBackN, CleanPipelinedLinkSustainsFullThroughput) {
  const std::size_t total = 300;
  Harness h(total, 4, 0.0, 0.0);
  const auto cycles =
      h.kernel.run_until([&] { return h.sender.done(); }, 5000);
  h.expect_all_delivered(total);
  // Window covers the round trip: ~1 flit/cycle plus pipeline fill.
  EXPECT_LT(cycles, total + 50);
}

TEST(GoBackN, SurvivesBitErrors) {
  Harness h(200, 2, 0.002, 0.0);
  h.run_to_done(50000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(200);
  EXPECT_GT(h.sender.tx().retransmissions(), 0u);
  EXPECT_GT(h.receiver.rx().crc_rejections(), 0u);
}

TEST(GoBackN, SurvivesHeavyErrors) {
  Harness h(100, 1, 0.01, 0.0, 17);
  h.run_to_done(200000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(100);
}

TEST(GoBackN, FlowControlBackpressureIsLossless) {
  Harness h(150, 2, 0.0, 0.6);
  h.run_to_done(50000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(150);
  EXPECT_GT(h.receiver.rx().flow_rejections(), 0u);
}

TEST(GoBackN, ErrorsAndBackpressureTogether) {
  Harness h(120, 3, 0.005, 0.4, 23);
  h.run_to_done(200000);
  ASSERT_TRUE(h.sender.done());
  h.expect_all_delivered(120);
}

// Sweep the paper-relevant space: pipeline depth x error rate.
class GoBackNSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(GoBackNSweep, LosslessInOrderDelivery) {
  const auto [stages, ber] = GetParam();
  Harness h(80, stages, ber, 0.2,
            static_cast<std::uint64_t>(stages * 1000 + ber * 1e6));
  h.run_to_done(300000);
  ASSERT_TRUE(h.sender.done())
      << "stages=" << stages << " ber=" << ber;
  h.expect_all_delivered(80);
}

INSTANTIATE_TEST_SUITE_P(
    DepthByError, GoBackNSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 4, 8),
                       ::testing::Values(0.0, 0.001, 0.01)));

// ---- Receiver back-pressure paths (goback_n.cpp begin_cycle), driven
// wire by wire so each branch is pinned in isolation: the can_take ==
// false nACK, its flow_rejections_ accounting, and the silent drop of a
// stale flit racing a rewind. These are exactly the behaviours credit
// flow control (credit.hpp) replaces, so they are pinned here before the
// protocol seam.

// One receiver on bare wires; the test plays the sender by writing the
// forward wire directly and committing the kernel.
struct RxHarness {
  sim::Kernel kernel;
  LinkWires wires;
  ProtocolConfig cfg;
  GoBackNReceiver rx;

  RxHarness()
      : wires(LinkWires::make(kernel)),
        cfg(ProtocolConfig::for_link(0)),
        rx(wires, cfg) {}

  /// Puts a sealed flit with sequence `seq` on the forward wire.
  void drive_flit(std::uint8_t seq, std::uint64_t payload = 0xAB) {
    Flit f(BitVector(16, payload), /*head=*/true, /*tail=*/true);
    f.seqno = seq;
    flit_seal(f, cfg.crc);
    wires.fwd->write(FlitBeat{true, std::move(f)});
    kernel.step();
  }

  /// One receiver cycle against the current wire; returns the delivered
  /// flit (if any) and leaves the ACK wire committed for inspection.
  std::optional<Flit> cycle(bool can_take) {
    auto flit = rx.begin_cycle(can_take);
    rx.end_cycle();
    kernel.step();
    return flit;
  }

  AckBeat ack() const { return wires.rev->read(); }
};

TEST(GoBackNReceiver, BackpressureNacksIntactInOrderFlit) {
  RxHarness h;
  h.drive_flit(0);
  // Intact, in order, but the owner has no buffer space: nACK(expected),
  // counted as a flow rejection, nothing delivered, expected_seq_ stays.
  EXPECT_FALSE(h.cycle(/*can_take=*/false).has_value());
  const AckBeat nack = h.ack();
  EXPECT_TRUE(nack.valid);
  EXPECT_FALSE(nack.ack);
  EXPECT_EQ(nack.seqno, 0u);
  EXPECT_EQ(h.rx.flow_rejections(), 1u);
  EXPECT_EQ(h.rx.flits_accepted(), 0u);

  // The retried flit (same sequence) goes through once space appears.
  h.drive_flit(0, 0xCD);
  const auto flit = h.cycle(/*can_take=*/true);
  ASSERT_TRUE(flit.has_value());
  EXPECT_EQ(flit->payload.to_u64(), 0xCDu);
  const AckBeat ack = h.ack();
  EXPECT_TRUE(ack.valid);
  EXPECT_TRUE(ack.ack);
  EXPECT_EQ(ack.seqno, 0u);
  EXPECT_EQ(h.rx.flow_rejections(), 1u);  // unchanged
  EXPECT_EQ(h.rx.flits_accepted(), 1u);
}

TEST(GoBackNReceiver, RepeatedBackpressureCountsEveryRejection) {
  RxHarness h;
  for (int i = 0; i < 5; ++i) {
    h.drive_flit(0);
    EXPECT_FALSE(h.cycle(/*can_take=*/false).has_value());
    EXPECT_FALSE(h.ack().ack);
  }
  EXPECT_EQ(h.rx.flow_rejections(), 5u);
  EXPECT_EQ(h.rx.crc_rejections(), 0u);
  EXPECT_EQ(h.rx.flits_accepted(), 0u);
}

TEST(GoBackNReceiver, StaleFlitAfterRewindIsDroppedSilently) {
  RxHarness h;
  // Deliver seq 0 so expected_seq_ advances to 1.
  h.drive_flit(0);
  ASSERT_TRUE(h.cycle(/*can_take=*/true).has_value());

  // A stale seq-0 flit races the rewind: dropped with *no* ACK or nACK
  // (nACKing again would only thrash a sender that is already resending)
  // and no rejection counter movement.
  h.drive_flit(0);
  EXPECT_FALSE(h.cycle(/*can_take=*/true).has_value());
  EXPECT_FALSE(h.ack().valid);
  EXPECT_EQ(h.rx.flow_rejections(), 0u);
  EXPECT_EQ(h.rx.crc_rejections(), 0u);
  EXPECT_EQ(h.rx.flits_accepted(), 1u);

  // The expected flit still goes through afterwards.
  h.drive_flit(1);
  EXPECT_TRUE(h.cycle(/*can_take=*/true).has_value());
  EXPECT_EQ(h.rx.flits_accepted(), 2u);
}

TEST(GoBackNReceiver, BackpressureNackWinsOverStaleDrop) {
  // Order of checks in begin_cycle: sequence before flow. A *stale* flit
  // under back-pressure is dropped silently (not flow-nACKed) — the
  // rejection counters must not move.
  RxHarness h;
  h.drive_flit(0);
  ASSERT_TRUE(h.cycle(/*can_take=*/true).has_value());
  h.drive_flit(0);  // stale
  EXPECT_FALSE(h.cycle(/*can_take=*/false).has_value());
  EXPECT_FALSE(h.ack().valid);
  EXPECT_EQ(h.rx.flow_rejections(), 0u);
}

TEST(GoBackN, SenderWindowNeverExceeded) {
  const auto cfg = ProtocolConfig::for_link(1);
  sim::Kernel kernel;
  auto wires = LinkWires::make(kernel);
  GoBackNSender tx(wires, cfg);
  // No receiver: nothing is ever acked; sender must stop at the window.
  std::size_t accepted = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    tx.begin_cycle();
    if (tx.can_accept()) {
      tx.accept(Flit(BitVector(8, static_cast<std::uint64_t>(cycle % 256)),
                     true, true));
      ++accepted;
    }
    tx.end_cycle();
    kernel.step();
  }
  EXPECT_EQ(accepted, cfg.window);
  EXPECT_EQ(tx.in_flight(), cfg.window);
}

}  // namespace
}  // namespace xpl::link
