// Channel-dependency-graph deadlock analysis.
#include "src/topology/deadlock.hpp"

#include <gtest/gtest.h>

#include "src/topology/generators.hpp"

namespace xpl::topology {
namespace {

TEST(Deadlock, XyOnMeshIsFree) {
  for (std::size_t w = 2; w <= 4; ++w) {
    for (std::size_t h = 2; h <= 4; ++h) {
      const auto t = make_mesh(w, h, NiPlan::uniform(w * h, 1, 1));
      const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
      const auto report = check_deadlock(t, tables);
      EXPECT_TRUE(report.deadlock_free) << w << "x" << h;
    }
  }
}

TEST(Deadlock, ShortestPathOnMeshIsFree) {
  // BFS with deterministic tie-break on a mesh yields minimal routes;
  // with links enumerated row-major these happen to be dimension-ordered,
  // hence deadlock-free. This documents (and pins) that property.
  const auto t = make_mesh(3, 3, NiPlan::uniform(9, 1, 1));
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
}

// A unidirectional ring forces every route around the loop: the channel
// dependency graph is exactly the ring -> guaranteed cycle.
Topology unidirectional_ring(std::size_t n) {
  Topology t;
  for (std::size_t i = 0; i < n; ++i) t.add_switch();
  for (std::size_t i = 0; i < n; ++i) {
    t.add_link(static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>((i + 1) % n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    t.attach_initiator(static_cast<std::uint32_t>(i));
    t.attach_target(static_cast<std::uint32_t>(i));
  }
  return t;
}

TEST(Deadlock, UnidirectionalRingCycles) {
  const auto t = unidirectional_ring(4);
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  const auto report = check_deadlock(t, tables);
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_GE(report.cycle.size(), 2u);
  EXPECT_NE(report.to_string(t).find("cycle"), std::string::npos);
}

TEST(Deadlock, TorusShortestPathReport) {
  // On a small torus, BFS with deterministic tie-breaks may or may not
  // produce cyclic dependencies; the checker must at least terminate and
  // the up*/down* alternative must always be clean.
  const auto t = make_torus(3, 3, NiPlan::uniform(9, 1, 1));
  const auto sp = compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  (void)check_deadlock(t, sp);
  const auto ud = compute_all_routes(t, RoutingAlgorithm::kUpDown);
  EXPECT_TRUE(check_deadlock(t, ud).deadlock_free);
}

TEST(Deadlock, UpDownIsFreeEverywhere) {
  std::vector<Topology> topologies;
  topologies.push_back(make_ring(8, NiPlan::uniform(8, 1, 1)));
  topologies.push_back(make_spidergon(8, NiPlan::uniform(8, 1, 1)));
  topologies.push_back(make_torus(3, 3, NiPlan::uniform(9, 1, 1)));
  topologies.push_back(make_binary_tree(4, NiPlan::uniform(15, 1, 1)));
  topologies.push_back(make_star(6, NiPlan::uniform(7, 1, 1)));
  for (const auto& t : topologies) {
    const auto tables = compute_all_routes(t, RoutingAlgorithm::kUpDown);
    EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
  }
}

TEST(Deadlock, BidirectionalRingShortestPathCycles) {
  // Minimal routing on a bidirectional ring still wraps in both
  // directions, so the dependency graph carries both ring cycles.
  const auto t = make_ring(6, NiPlan::uniform(6, 1, 1));
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  const auto report = check_deadlock(t, tables);
  EXPECT_FALSE(report.deadlock_free);
}

TEST(Deadlock, ReportPrintsFreeForCleanTables) {
  const auto t = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
  const auto report = check_deadlock(t, tables);
  EXPECT_EQ(report.to_string(t), "deadlock-free");
}

TEST(Deadlock, EmptyTablesAreFree) {
  const auto t = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  RoutingTables tables;
  EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
}

}  // namespace
}  // namespace xpl::topology
