// Channel-dependency-graph deadlock analysis.
#include "src/topology/deadlock.hpp"

#include <gtest/gtest.h>

#include "src/topology/generators.hpp"

namespace xpl::topology {
namespace {

TEST(Deadlock, XyOnMeshIsFree) {
  for (std::size_t w = 2; w <= 4; ++w) {
    for (std::size_t h = 2; h <= 4; ++h) {
      const auto t = make_mesh(w, h, NiPlan::uniform(w * h, 1, 1));
      const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
      const auto report = check_deadlock(t, tables);
      EXPECT_TRUE(report.deadlock_free) << w << "x" << h;
    }
  }
}

TEST(Deadlock, ShortestPathOnMeshIsFree) {
  // BFS with deterministic tie-break on a mesh yields minimal routes;
  // with links enumerated row-major these happen to be dimension-ordered,
  // hence deadlock-free. This documents (and pins) that property.
  const auto t = make_mesh(3, 3, NiPlan::uniform(9, 1, 1));
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
}

// A unidirectional ring forces every route around the loop: the channel
// dependency graph is exactly the ring -> guaranteed cycle.
Topology unidirectional_ring(std::size_t n) {
  Topology t;
  for (std::size_t i = 0; i < n; ++i) t.add_switch();
  for (std::size_t i = 0; i < n; ++i) {
    t.add_link(static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>((i + 1) % n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    t.attach_initiator(static_cast<std::uint32_t>(i));
    t.attach_target(static_cast<std::uint32_t>(i));
  }
  return t;
}

TEST(Deadlock, UnidirectionalRingCycles) {
  const auto t = unidirectional_ring(4);
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  const auto report = check_deadlock(t, tables);
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_GE(report.cycle.size(), 2u);
  EXPECT_NE(report.to_string(t).find("cycle"), std::string::npos);
}

TEST(Deadlock, TorusShortestPathReport) {
  // On a small torus, BFS with deterministic tie-breaks may or may not
  // produce cyclic dependencies; the checker must at least terminate and
  // the up*/down* alternative must always be clean.
  const auto t = make_torus(3, 3, NiPlan::uniform(9, 1, 1));
  const auto sp = compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  (void)check_deadlock(t, sp);
  const auto ud = compute_all_routes(t, RoutingAlgorithm::kUpDown);
  EXPECT_TRUE(check_deadlock(t, ud).deadlock_free);
}

TEST(Deadlock, UpDownIsFreeEverywhere) {
  std::vector<Topology> topologies;
  topologies.push_back(make_ring(8, NiPlan::uniform(8, 1, 1)));
  topologies.push_back(make_spidergon(8, NiPlan::uniform(8, 1, 1)));
  topologies.push_back(make_torus(3, 3, NiPlan::uniform(9, 1, 1)));
  topologies.push_back(make_binary_tree(4, NiPlan::uniform(15, 1, 1)));
  topologies.push_back(make_star(6, NiPlan::uniform(7, 1, 1)));
  for (const auto& t : topologies) {
    const auto tables = compute_all_routes(t, RoutingAlgorithm::kUpDown);
    EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
  }
}

TEST(Deadlock, BidirectionalRingShortestPathCycles) {
  // Minimal routing on a bidirectional ring still wraps in both
  // directions, so the dependency graph carries both ring cycles.
  const auto t = make_ring(6, NiPlan::uniform(6, 1, 1));
  const auto tables =
      compute_all_routes(t, RoutingAlgorithm::kShortestPath);
  const auto report = check_deadlock(t, tables);
  EXPECT_FALSE(report.deadlock_free);
}

TEST(Deadlock, VcAwareCheckerMatchesSeedAtOneLane) {
  // The (link, vc) graph with one lane is exactly the seed's link graph:
  // same verdicts on a free and on a cycling case.
  const auto mesh = make_mesh(3, 3, NiPlan::uniform(9, 1, 1));
  const auto mesh_sp =
      compute_all_routes(mesh, RoutingAlgorithm::kShortestPath);
  EXPECT_TRUE(check_deadlock(mesh, mesh_sp, VcPolicy{1, false})
                  .deadlock_free);

  const auto ring = make_ring(6, NiPlan::uniform(6, 1, 1));
  const auto ring_sp =
      compute_all_routes(ring, RoutingAlgorithm::kShortestPath);
  EXPECT_FALSE(check_deadlock(ring, ring_sp, VcPolicy{1, false})
                   .deadlock_free);
}

TEST(Deadlock, DatelineBreaksRingAndTorusCycles) {
  for (auto topo : {make_ring(8, NiPlan::uniform(8, 1, 1)),
                    make_torus(4, 4, NiPlan::uniform(16, 1, 1)),
                    make_spidergon(8, NiPlan::uniform(8, 1, 1))}) {
    const auto tables =
        compute_all_routes(topo, RoutingAlgorithm::kShortestPath);
    const auto p2 =
        make_vc_policy(topo, RoutingAlgorithm::kShortestPath, 2);
    EXPECT_TRUE(p2.dateline);
    EXPECT_TRUE(check_deadlock(topo, tables, p2).deadlock_free);
  }
}

TEST(Deadlock, CycleReportNamesLanes) {
  const auto ring = make_ring(6, NiPlan::uniform(6, 1, 1));
  const auto tables =
      compute_all_routes(ring, RoutingAlgorithm::kShortestPath);
  // Two lanes *without* the dateline discipline: the cycle survives in
  // both lane copies and the report names a concrete (link, lane) cycle.
  const auto report =
      check_deadlock(ring, tables, VcPolicy{2, /*dateline=*/false});
  ASSERT_FALSE(report.deadlock_free);
  EXPECT_GE(report.cycle.size(), 2u);
  for (const auto& ch : report.cycle) EXPECT_LT(ch.vc, 2);
  EXPECT_NE(report.to_string(ring).find("cycle"), std::string::npos);
}

TEST(Deadlock, ReportPrintsFreeForCleanTables) {
  const auto t = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
  const auto report = check_deadlock(t, tables);
  EXPECT_EQ(report.to_string(t), "deadlock-free");
}

TEST(Deadlock, EmptyTablesAreFree) {
  const auto t = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  RoutingTables tables;
  EXPECT_TRUE(check_deadlock(t, tables).deadlock_free);
}

}  // namespace
}  // namespace xpl::topology
