// Regression tests for the behavioral determinism bugs xlint's
// unstable-sort check (XL103, docs/LINTING.md) surfaced in PR 9.
//
// Both sorts ranked by a single projection with std::sort, leaving the
// relative order of ties unspecified: stable for <= 16 elements on
// libstdc++ (insertion sort), silently permuted beyond that, and
// different again on other standard libraries. The fixes pin tie order
// to input (= creation/index) order with std::stable_sort; these tests
// use > 16 tied elements so the pre-fix introsort path actually engages
// and the tests fail without the fix.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/appgraph/core_graph.hpp"
#include "src/appgraph/mapping.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"

namespace xpl {
namespace {

// collect_link_loads ranks links by descending flit count. An idle
// network makes every link a tie, so the report order must be exactly
// the creation order of link_stats() — the order every other export
// anchors to (DESIGN.md §10) — not an introsort shuffle of it.
TEST(LintRegress, IdleLinkLoadsKeepCreationOrder) {
  noc::NetworkConfig cfg;
  cfg.flit_width = 32;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)), cfg);
  net.kernel().run(16);  // idle: no traffic, all links carry zero flits

  const auto stats = net.link_stats();
  const auto loads = traffic::collect_link_loads(net, 16);
  ASSERT_EQ(loads.size(), stats.size());
  ASSERT_GT(loads.size(), 16u);  // large enough to leave insertion-sort
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(loads[i].flits, 0u);
    EXPECT_EQ(loads[i].name, stats[i].name)
        << "tied link load rank " << i << " left creation order";
  }
}

// greedy_map places cores in decreasing-traffic order. Cores with equal
// traffic must place in core-index order; with zero flows every core is
// a tie and every placement cost is zero, so the documented fixed point
// is the identity mapping (core i on switch i). The pre-fix std::sort
// permutes > 16 tied cores and scatters them instead.
TEST(LintRegress, EqualTrafficCoresPlaceInIndexOrder) {
  appgraph::CoreGraph graph("ties");
  const std::size_t cores = 20;
  for (std::size_t c = 0; c < cores; ++c) {
    graph.add_core("c" + std::to_string(c));
  }
  const auto topo =
      topology::make_ring(cores, topology::NiPlan::uniform(cores, 1, 1));
  const appgraph::Mapping mapping = appgraph::greedy_map(graph, topo);
  ASSERT_EQ(mapping.core_to_switch.size(), cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    EXPECT_EQ(mapping.core_to_switch[c], c)
        << "equal-traffic core " << c << " left index order";
  }
}

// Same property under equal nonzero traffic: a 20-stage pipeline whose
// flows all carry identical bandwidth. Placement must be reproducible
// across standard libraries, which the index-order tie-break guarantees;
// this pins the concrete mapping the stable order produces (chain
// neighbors co-locate next to each other along the ring).
TEST(LintRegress, EqualBandwidthPipelineMapsDeterministically) {
  appgraph::CoreGraph graph("pipe");
  const std::uint32_t cores = 20;
  for (std::uint32_t c = 0; c < cores; ++c) {
    graph.add_core("c" + std::to_string(c));
  }
  for (std::uint32_t c = 0; c + 1 < cores; ++c) {
    graph.add_flow(c, c + 1, 1.0);
  }
  const auto topo =
      topology::make_ring(cores, topology::NiPlan::uniform(cores, 1, 1));
  const appgraph::Mapping a = appgraph::greedy_map(graph, topo);
  // Interior cores all carry traffic 2.0 (head/tail carry 1.0): heavy
  // ties everywhere. The chain must come out contiguous on the ring —
  // every flow's endpoints at most one hop apart — which only holds
  // when tied cores keep index order (core c's predecessor is already
  // placed when c places).
  const auto dist = appgraph::switch_distances(topo);
  for (std::uint32_t c = 0; c + 1 < cores; ++c) {
    EXPECT_LE(dist[a.core_to_switch[c]][a.core_to_switch[c + 1]], 1u)
        << "pipeline stage " << c << " -> " << c + 1 << " not adjacent";
  }
}

}  // namespace
}  // namespace xpl
