// Workload layer: benchmark registry, trace format round-trips, and the
// record -> replay determinism contract (DESIGN.md §5).
#include <gtest/gtest.h>

#include <fstream>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/benchmarks.hpp"
#include "src/workload/trace.hpp"

namespace xpl::workload {
namespace {

std::unique_ptr<noc::Network> make_net(std::uint64_t seed = 1) {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.seed = seed;
  return std::make_unique<noc::Network>(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
}

TEST(Benchmarks, RegistryListsTheClassicThree) {
  EXPECT_EQ(benchmark_names(),
            (std::vector<std::string>{"mpeg4", "vopd", "mwd"}));
  for (const auto& name : benchmark_names()) {
    EXPECT_TRUE(is_benchmark(name));
    const auto graph = benchmark(name);
    EXPECT_EQ(graph.name(), name);
    EXPECT_EQ(graph.num_cores(), 12u);
    EXPECT_GT(graph.flows().size(), 0u);
    EXPECT_GT(graph.total_bandwidth(), 0.0);
  }
  EXPECT_FALSE(is_benchmark("doom"));
  EXPECT_THROW(benchmark("doom"), Error);
}

TEST(Benchmarks, WeightsPreserveBandwidthAndShape) {
  const auto graph = benchmark("mpeg4");
  const auto topo =
      topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 1, 1));
  const auto weights = benchmark_weights(graph, topo);
  ASSERT_EQ(weights.size(), 12u);
  double total = 0;
  for (const auto& row : weights) {
    ASSERT_EQ(row.size(), 12u);
    for (const double w : row) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
  }
  EXPECT_DOUBLE_EQ(total, graph.total_bandwidth());
  // Deterministic: same inputs, same matrix.
  EXPECT_EQ(weights, benchmark_weights(graph, topo));
}

TEST(Benchmarks, WeightsRequireNisOnEverySwitch) {
  const auto graph = benchmark("mwd");
  const auto bare =
      topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0));
  EXPECT_THROW(benchmark_weights(graph, bare), Error);
}

TEST(TraceFormat, ParsesHeaderAndEntries) {
  const Trace t = parse_trace(
      "# captured trace\n"
      "trace demo\n"
      "initiators 4\n"
      "targets 4   # full mesh\n"
      "0 0 1 read 0 1\n"
      "5 1 2 write 16 2\n"
      "9 3 0 writenp 8 1\n");
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.initiators, 4u);
  EXPECT_EQ(t.targets, 4u);
  ASSERT_EQ(t.entries.size(), 3u);
  EXPECT_EQ(t.entries[1].cmd, ocp::Cmd::kWrite);
  EXPECT_EQ(t.entries[1].burst, 2u);
}

TEST(TraceFormat, HeaderlessBodyIsLegacyCompatible) {
  // A bare entry body (the traffic/ trace format) parses with an
  // unconstrained shape.
  const Trace t = parse_trace("0 0 1 read 0 1\n4 1 0 write 8 1\n");
  EXPECT_EQ(t.initiators, 0u);
  EXPECT_EQ(t.targets, 0u);
  EXPECT_EQ(t.entries.size(), 2u);
}

TEST(TraceFormat, RejectsMalformed) {
  EXPECT_THROW(parse_trace("trace\n"), Error);          // missing value
  EXPECT_THROW(parse_trace("initiators x\n"), Error);   // bad count
  EXPECT_THROW(parse_trace("initiators 4294967296\n"),
               Error);                                  // count overflow
  EXPECT_THROW(parse_trace("initators 12\n"), Error);   // typo'd directive
  EXPECT_THROW(parse_trace("0 0 1 read 0 1\ntrace late\n"),
               Error);                                  // directive late
  EXPECT_THROW(parse_trace("initiators 2\n0 5 0 read 0 1\n"),
               Error);                                  // out of range
  EXPECT_THROW(parse_trace("targets 2\n0 0 5 read 0 1\n"), Error);
  EXPECT_THROW(parse_trace("5 0 0 read 0 1\n1 0 0 read 0 1\n"),
               Error);                                  // out of order
  EXPECT_THROW(parse_trace("0 0 1 read 0 1 x\n"), Error);  // bad thread
  EXPECT_THROW(parse_trace("0 0 1 read 0 1 2 9\n"),
               Error);                                  // trailing token
}

TEST(TraceFormat, WriterRejectsNamesThatCannotReload) {
  Trace t;
  t.name = "has space";  // would parse as extra tokens
  EXPECT_THROW(write_trace(t), Error);
  t.name = "a#b";  // '#' truncates as a comment on reload
  EXPECT_THROW(write_trace(t), Error);
  t.name = "";
  EXPECT_THROW(write_trace(t), Error);
}

TEST(TraceFormat, RoundTripsByteIdentically) {
  Trace t;
  t.name = "rt";
  t.initiators = 3;
  t.targets = 2;
  t.entries.push_back({0, 0, 1, ocp::Cmd::kRead, 64, 2, 3});
  t.entries.push_back({7, 2, 0, ocp::Cmd::kWrite, 8, 4, 0});
  t.entries.push_back({7, 1, 1, ocp::Cmd::kWriteNp, 0, 1, 1});
  const std::string canonical = write_trace(t);
  EXPECT_EQ(write_trace(parse_trace(canonical)), canonical);
  // And through a file.
  const std::string path = ::testing::TempDir() + "/workload_rt.trace";
  save_trace(t, path);
  EXPECT_EQ(write_trace(load_trace(path)), canonical);
}

TEST(TraceReplay, RecorderCapturesDriverSchedule) {
  auto net = make_net();
  TraceRecorder recorder(*net, "unit");
  traffic::TrafficConfig cfg;
  cfg.injection_rate = 0.1;
  cfg.seed = 11;
  traffic::TrafficDriver driver(*net, cfg);
  driver.run(200);
  net->run_until_quiescent(50000);

  const Trace& t = recorder.trace();
  EXPECT_EQ(t.initiators, 4u);
  EXPECT_EQ(t.targets, 4u);
  EXPECT_EQ(t.entries.size(), driver.injected());
  ASSERT_GT(t.entries.size(), 0u);
  for (std::size_t i = 1; i < t.entries.size(); ++i) {
    EXPECT_LE(t.entries[i - 1].cycle, t.entries[i].cycle);
  }
}

TEST(TraceReplay, ReplayReproducesRunStatsAndTraceBytes) {
  // Record a bursty run ...
  Trace recorded;
  std::string live_stats;
  {
    auto net = make_net();
    TraceRecorder recorder(*net, "unit");
    traffic::TrafficConfig cfg;
    cfg.injection_rate = 0.08;
    cfg.burstiness = 0.5;
    cfg.seed = 5;
    traffic::TrafficDriver driver(*net, cfg);
    driver.run(300);
    net->run_until_quiescent(50000);
    recorded = recorder.trace();
    live_stats = traffic::collect_run(*net, 300).to_string();
  }
  ASSERT_GT(recorded.entries.size(), 0u);

  // ... replay it on a fresh network while re-recording: identical
  // RunStats, and the re-recorded trace is byte-identical — replay
  // involves no RNG, so there is no seed it could depend on.
  auto net = make_net();
  TraceRecorder recorder(*net, "unit");
  TraceDriver replay(*net, recorded);
  replay.run(300);
  net->run_until_quiescent(50000);
  EXPECT_TRUE(replay.done());
  EXPECT_EQ(traffic::collect_run(*net, 300).to_string(), live_stats);
  EXPECT_EQ(write_trace(recorder.trace()), write_trace(recorded));
}

TEST(TraceReplay, ValidatesCompatibility) {
  auto net = make_net();
  Trace t;
  t.initiators = 9;  // network has 4
  EXPECT_THROW(TraceDriver(*net, t), Error);
  t.initiators = 4;
  t.targets = 9;
  EXPECT_THROW(TraceDriver(*net, t), Error);
  t.targets = 4;
  t.entries.push_back({0, 0, 0, ocp::Cmd::kRead, 0, 200});  // burst too big
  EXPECT_THROW(TraceDriver(*net, t), Error);
  t.entries[0] = {0, 0, 0, ocp::Cmd::kRead, 0, 1, 99};  // bad thread id
  EXPECT_THROW(TraceDriver(*net, t), Error);
}

TEST(TraceReplay, ReplayHelperDrains) {
  auto net = make_net();
  Trace t;
  t.initiators = 4;
  t.targets = 4;
  t.entries.push_back({0, 0, 1, ocp::Cmd::kRead, 0, 1});
  t.entries.push_back({40, 2, 3, ocp::Cmd::kWriteNp, 8, 1});
  TraceDriver driver(*net, t);
  const std::uint64_t cycles = driver.replay(50000);
  EXPECT_TRUE(driver.done());
  EXPECT_GT(cycles, 40u);
  EXPECT_EQ(net->master(0).completed().size(), 1u);
  EXPECT_EQ(net->master(2).completed().size(), 1u);
}

}  // namespace
}  // namespace xpl::workload
