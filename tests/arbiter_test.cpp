// Arbiter policies: correctness and fairness.
#include "src/switchlib/arbiter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xpl::switchlib {
namespace {

std::vector<bool> mask(std::size_t n, std::initializer_list<std::size_t> set) {
  std::vector<bool> m(n, false);
  for (const auto i : set) m[i] = true;
  return m;
}

TEST(FixedPriorityArbiter, GrantsLowestIndex) {
  FixedPriorityArbiter arb(4);
  EXPECT_EQ(arb.grant(mask(4, {2, 3})).value(), 2u);
  EXPECT_EQ(arb.grant(mask(4, {0, 3})).value(), 0u);
  EXPECT_EQ(arb.grant(mask(4, {3})).value(), 3u);
}

TEST(FixedPriorityArbiter, NoRequestNoGrant) {
  FixedPriorityArbiter arb(4);
  EXPECT_FALSE(arb.grant(mask(4, {})).has_value());
}

TEST(FixedPriorityArbiter, StarvesHighIndices) {
  // Documented behaviour: under continuous low-index load, high indices
  // never win — the reason the paper also offers round robin.
  FixedPriorityArbiter arb(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arb.grant(mask(3, {0, 2})).value(), 0u);
  }
}

TEST(RoundRobinArbiter, RotatesAmongRequesters) {
  RoundRobinArbiter arb(4);
  const auto all = mask(4, {0, 1, 2, 3});
  EXPECT_EQ(arb.grant(all).value(), 0u);
  EXPECT_EQ(arb.grant(all).value(), 1u);
  EXPECT_EQ(arb.grant(all).value(), 2u);
  EXPECT_EQ(arb.grant(all).value(), 3u);
  EXPECT_EQ(arb.grant(all).value(), 0u);
}

TEST(RoundRobinArbiter, SkipsIdleRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.grant(mask(4, {1, 3})).value(), 1u);
  EXPECT_EQ(arb.grant(mask(4, {1, 3})).value(), 3u);
  EXPECT_EQ(arb.grant(mask(4, {1, 3})).value(), 1u);
}

TEST(RoundRobinArbiter, NoRequestNoGrantKeepsPointer) {
  RoundRobinArbiter arb(3);
  EXPECT_EQ(arb.grant(mask(3, {2})).value(), 2u);
  EXPECT_FALSE(arb.grant(mask(3, {})).has_value());
  // Pointer still past 2: next grant starts the scan at 0.
  EXPECT_EQ(arb.grant(mask(3, {0, 2})).value(), 0u);
}

TEST(RoundRobinArbiter, FairUnderSaturation) {
  const std::size_t n = 5;
  RoundRobinArbiter arb(n);
  std::vector<int> wins(n, 0);
  const auto all = mask(n, {0, 1, 2, 3, 4});
  for (int i = 0; i < 1000; ++i) {
    ++wins[arb.grant(all).value()];
  }
  for (const int w : wins) EXPECT_EQ(w, 200);
}

TEST(Arbiter, PolicyDispatch) {
  Arbiter fixed(ArbiterKind::kFixedPriority, 3);
  Arbiter rr(ArbiterKind::kRoundRobin, 3);
  const auto all = mask(3, {0, 1, 2});
  EXPECT_EQ(fixed.grant(all).value(), 0u);
  EXPECT_EQ(fixed.grant(all).value(), 0u);
  EXPECT_EQ(rr.grant(all).value(), 0u);
  EXPECT_EQ(rr.grant(all).value(), 1u);
}

TEST(Arbiter, Names) {
  EXPECT_STREQ(arbiter_name(ArbiterKind::kFixedPriority), "fixed");
  EXPECT_STREQ(arbiter_name(ArbiterKind::kRoundRobin), "round-robin");
}

// Property: any single requester is always granted, for both policies.
class SingleRequesterSweep
    : public ::testing::TestWithParam<std::tuple<ArbiterKind, std::size_t>> {
};

TEST_P(SingleRequesterSweep, AlwaysGranted) {
  const auto [kind, n] = GetParam();
  Arbiter arb(kind, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> m(n, false);
    m[i] = true;
    const auto grant = arb.grant(m);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(*grant, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SingleRequesterSweep,
    ::testing::Combine(::testing::Values(ArbiterKind::kFixedPriority,
                                         ArbiterKind::kRoundRobin),
                       ::testing::Values<std::size_t>(1, 2, 4, 6, 8)));

}  // namespace
}  // namespace xpl::switchlib
