#!/usr/bin/env python3
"""Fixture suite for tools/xlint (registered in ctest as lint_test).

Three guarantees, per ISSUE/docs/LINTING.md:

  1. Every custom check FIRES: each seeded-violation fixture under
     tests/lint_fixtures/ carries `// xlint-expect: XLnnn` markers, and
     the analyzer's findings must match the marker set exactly — a
     marker matches a finding on its own line (trailing comment) or on
     the line below (stand-alone marker above the offence, mirroring the
     suppression grammar).
  2. Every check stays SILENT on conforming code: the clean twins (and
     the cross-file merge pair) must produce zero findings, which also
     proves that used suppressions do not decay into XL001.
  3. The real tree passes clean: xlint over src/ exits 0.

Fixtures are analyzed with the regex backend so the suite is hermetic —
identical results with or without libclang installed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(TESTS_DIR)
sys.path.insert(0, os.path.join(ROOT, "tools"))

from xlint.backends import build_model  # noqa: E402
from xlint.checks import RULES, Analyzer  # noqa: E402

FIXTURES = os.path.join(TESTS_DIR, "lint_fixtures")
XLINT = os.path.join(ROOT, "tools", "xlint", "xlint.py")

BAD_FIXTURES = (
    "bad_determinism.cpp",
    "bad_module.cpp",
    "bad_signals.cpp",
    "bad_export.cpp",
    "bad_suppressions.cpp",
)
CLEAN_FIXTURES = ("clean_determinism.cpp", "clean_module.cpp")
MERGE_FIXTURES = ("merge_a_impl.cpp", "merge_z_decl.hpp")  # order matters


def analyze(names):
    """Runs the analyzer over the named fixtures (in the given order) and
    returns ([(file, line, rule)], [(file, line, rule)]) for findings and
    expect markers."""
    models = []
    for name in names:
        path = os.path.join(FIXTURES, name)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        rel = os.path.relpath(path, ROOT).replace(os.sep, "/")
        models.append(build_model(rel, raw, "regex", None, []))
    findings = Analyzer(models).run()
    found = [(os.path.basename(f.path), f.line, f.rule) for f in findings]
    expected = [
        (os.path.basename(m.path), line, rule)
        for m in models
        for line, rule in m.expects
    ]
    return found, expected


class FixtureCase(unittest.TestCase):
    maxDiff = None

    def assert_matches_expects(self, names):
        found, expected = analyze(names)
        remaining = list(found)
        for file, line, rule in expected:
            hit = next(
                (
                    f
                    for f in remaining
                    if f[0] == file and f[2] == rule and f[1] in (line, line + 1)
                ),
                None,
            )
            self.assertIsNotNone(
                hit,
                f"expected {rule} at {file}:{line} (or :{line + 1}) did not "
                f"fire; findings left: {remaining}",
            )
            remaining.remove(hit)
        self.assertEqual(
            remaining, [], "findings not covered by any xlint-expect marker"
        )

    def test_determinism_checks_fire(self):
        self.assert_matches_expects(["bad_determinism.cpp"])

    def test_module_contract_checks_fire(self):
        self.assert_matches_expects(["bad_module.cpp"])

    def test_signal_discipline_checks_fire(self):
        self.assert_matches_expects(["bad_signals.cpp"])

    def test_export_stability_check_fires(self):
        self.assert_matches_expects(["bad_export.cpp"])

    def test_suppression_hygiene_checks_fire(self):
        self.assert_matches_expects(["bad_suppressions.cpp"])

    def test_clean_twins_stay_silent(self):
        found, expected = analyze(CLEAN_FIXTURES)
        self.assertEqual(expected, [], "clean fixtures must carry no markers")
        self.assertEqual(found, [], "clean fixtures produced findings")

    def test_cross_file_merge_attaches_out_of_line_bodies(self):
        # The .cpp sorts (and is analyzed) before the .hpp that declares
        # the class; the two-pass merge must still see Relay::forward as
        # tick-reachable, so the write in it stays silent.
        found, _ = analyze(list(MERGE_FIXTURES))
        self.assertEqual(found, [], "out-of-line tick body was dropped")

    def test_every_rule_has_a_firing_fixture(self):
        covered = set()
        for name in BAD_FIXTURES:
            _, expected = analyze([name])
            covered |= {rule for _f, _l, rule in expected}
        self.assertEqual(
            covered,
            set(RULES),
            "every rule in the catalogue needs a seeded fixture that fires it",
        )


class CliCase(unittest.TestCase):
    def run_xlint(self, *args):
        return subprocess.run(
            [sys.executable, XLINT, *args],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )

    def test_real_tree_is_clean(self):
        proc = self.run_xlint("--backend=regex", "-q")
        self.assertEqual(
            proc.returncode, 0, f"src/ has findings:\n{proc.stdout}{proc.stderr}"
        )
        self.assertEqual(proc.stdout, "")

    def test_seeded_violation_fails_the_gate(self):
        proc = self.run_xlint(
            "--backend=regex", os.path.join(FIXTURES, "bad_determinism.cpp")
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("XL103", proc.stdout)

    def test_missing_file_is_a_usage_error(self):
        proc = self.run_xlint(os.path.join(FIXTURES, "no_such_file.cpp"))
        self.assertEqual(proc.returncode, 2)

    def test_list_checks_prints_catalogue(self):
        proc = self.run_xlint("--list-checks")
        self.assertEqual(proc.returncode, 0)
        for rule in RULES:
            self.assertIn(rule, proc.stdout)

    def test_json_report_round_trips(self):
        with tempfile.TemporaryDirectory() as tmp:
            report = os.path.join(tmp, "report.json")
            proc = self.run_xlint(
                "--backend=regex",
                "--json",
                report,
                os.path.join(FIXTURES, "bad_export.cpp"),
            )
            self.assertEqual(proc.returncode, 1)
            with open(report, encoding="utf-8") as f:
                data = json.load(f)
        self.assertEqual(data["backend"], "regex")
        self.assertEqual(data["files_scanned"], 1)
        self.assertTrue(
            all(f["rule"] == "XL401" for f in data["findings"]) and data["findings"]
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
